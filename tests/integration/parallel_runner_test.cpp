// Determinism contract of the parallel multi-start runner (DESIGN.md §4e):
// for every thread count the best cut, per-run cuts, run records and the
// timing-free stats JSON are identical — including under an expired time
// budget and under injected mid-pass cancellation.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "placement/paraboli.h"
#include "runtime/run_context.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "testutil.h"

namespace prop {
namespace {

std::string stats_json_without_timing(const MultiRunResult& r) {
  StatsJsonOptions json_options;
  json_options.include_timing = false;
  std::ostringstream out;
  write_stats_json(out, "circuit", "algo", r, json_options);
  return out.str();
}

void expect_equal_results(const MultiRunResult& a, const MultiRunResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.best_cut(), b.best_cut()) << label;
  EXPECT_EQ(a.best_seed, b.best_seed) << label;
  EXPECT_EQ(a.best.side, b.best.side) << label;
  EXPECT_EQ(a.cuts, b.cuts) << label;
  EXPECT_EQ(a.status.code, b.status.code) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].seed, b.records[i].seed) << label << " run " << i;
    EXPECT_EQ(a.records[i].status.code, b.records[i].status.code)
        << label << " run " << i;
    EXPECT_EQ(a.records[i].cut, b.records[i].cut) << label << " run " << i;
  }
  // The serialized form (timing aside) must be byte-identical.
  EXPECT_EQ(stats_json_without_timing(a), stats_json_without_timing(b))
      << label;
}

MultiRunResult sweep(Bipartitioner& algo, const Hypergraph& g, int runs,
                     int threads, const RunContext* context = nullptr,
                     bool telemetry = false) {
  RunnerOptions options;
  options.threads = threads;
  options.context = context;
  options.collect_telemetry = telemetry;
  return run_many(algo, g, BalanceConstraint::forty_five(g), runs, 1, options);
}

TEST(ParallelRunner, EveryPartitionerSupportsClone) {
  const Hypergraph g = testing::chain_of_blocks(3, 8);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  std::vector<std::unique_ptr<Bipartitioner>> algos;
  algos.push_back(std::make_unique<FmPartitioner>());
  algos.push_back(std::make_unique<FmPartitioner>(
      FmConfig{FmStructure::kTree}));
  algos.push_back(std::make_unique<LaPartitioner>(LaConfig{2}));
  algos.push_back(std::make_unique<KlPartitioner>());
  algos.push_back(std::make_unique<PropPartitioner>());
  algos.push_back(std::make_unique<Eig1Partitioner>());
  algos.push_back(std::make_unique<MeloPartitioner>());
  algos.push_back(std::make_unique<ParaboliPartitioner>());
  algos.push_back(std::make_unique<WindowPartitioner>());
  for (const auto& algo : algos) {
    const std::unique_ptr<Bipartitioner> copy = algo->clone();
    ASSERT_NE(copy, nullptr) << algo->name();
    EXPECT_EQ(copy->name(), algo->name());
    // The clone reproduces the original bit-for-bit from the same seed.
    const RunOutcome a = run_checked(*algo, g, balance, 5);
    const RunOutcome b = run_checked(*copy, g, balance, 5);
    ASSERT_TRUE(a.has_result()) << algo->name();
    ASSERT_TRUE(b.has_result()) << algo->name();
    EXPECT_EQ(a.result.cut_cost, b.result.cut_cost) << algo->name();
    EXPECT_EQ(a.result.side, b.result.side) << algo->name();
  }
}

TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  const Hypergraph g = testing::small_random_circuit();
  FmPartitioner fm;
  const MultiRunResult t1 = sweep(fm, g, 8, 1, nullptr, true);
  const MultiRunResult t2 = sweep(fm, g, 8, 2, nullptr, true);
  const MultiRunResult t8 = sweep(fm, g, 8, 8, nullptr, true);
  expect_equal_results(t1, t2, "fm threads 1 vs 2");
  expect_equal_results(t1, t8, "fm threads 1 vs 8");
  ASSERT_EQ(t1.telemetry.size(), 8u);
  ASSERT_EQ(t8.telemetry.size(), 8u);
  for (std::size_t i = 0; i < t1.telemetry.size(); ++i) {
    EXPECT_EQ(t1.telemetry[i].seed, t8.telemetry[i].seed);
    EXPECT_EQ(t1.telemetry[i].cut, t8.telemetry[i].cut);
    EXPECT_EQ(t1.telemetry[i].refine.passes.size(),
              t8.telemetry[i].refine.passes.size());
  }
}

TEST(ParallelRunner, PropMatchesAcrossThreadCounts) {
  const Hypergraph g = testing::chain_of_blocks(4, 10);
  PropPartitioner prop_algo;
  const MultiRunResult t1 = sweep(prop_algo, g, 6, 1);
  const MultiRunResult t3 = sweep(prop_algo, g, 6, 3);
  expect_equal_results(t1, t3, "prop threads 1 vs 3");
}

TEST(ParallelRunner, ParallelPathMatchesLegacySequentialPath) {
  const Hypergraph g = testing::small_random_circuit();
  FmPartitioner fm;
  // Without a runtime context the sequential path has no shared state, so
  // the dispatch paths must agree exactly.
  const MultiRunResult sequential = sweep(fm, g, 6, 0);
  const MultiRunResult parallel = sweep(fm, g, 6, 2);
  expect_equal_results(sequential, parallel, "threads 0 vs 2");
}

TEST(ParallelRunner, MoreThreadsThanRunsIsFine) {
  const Hypergraph g = testing::chain_of_blocks(3, 6);
  FmPartitioner fm;
  const MultiRunResult r = sweep(fm, g, 2, 8);
  EXPECT_EQ(r.runs_attempted(), 2);
  EXPECT_TRUE(r.best.valid());
}

TEST(ParallelRunner, RequiresCloneSupport) {
  // A partitioner without a clone() override cannot be dispatched.
  class NoClone : public Bipartitioner {
   public:
    std::string name() const override { return "no-clone"; }
    PartitionResult run(const Hypergraph& g, const BalanceConstraint&,
                        std::uint64_t) override {
      PartitionResult r;
      r.side.assign(g.num_nodes(), 0);
      return r;
    }
  };
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  NoClone algo;
  RunnerOptions options;
  options.threads = 2;
  EXPECT_THROW(
      run_many(algo, g, BalanceConstraint::fifty_fifty(g), 2, 1, options),
      std::invalid_argument);
}

TEST(ParallelRunner, ExpiredBudgetIsDeterministicAcrossThreadCounts) {
  const Hypergraph g = testing::small_random_circuit();
  FmPartitioner fm;
  const int runs = 6;
  std::vector<MultiRunResult> results;
  for (const int threads : {1, 2, 8}) {
    // An already-expired budget is the one budget whose stop points are
    // schedule-independent: every poll observes it.
    CancelToken token(Deadline::after_ms(0));
    RunContext context;
    context.cancel = &token;
    results.push_back(sweep(fm, g, runs, threads, &context));
    const MultiRunResult& r = results.back();
    // All requested runs are attempted — a stop never skips seeds on the
    // parallel path — and each kept its best validated prefix.
    EXPECT_EQ(r.runs_attempted(), runs);
    EXPECT_EQ(r.status.code, StatusCode::kBudgetExhausted);
    EXPECT_TRUE(r.best.valid());
    for (const RunRecord& rec : r.records) {
      EXPECT_EQ(rec.status.code, StatusCode::kBudgetExhausted);
      EXPECT_TRUE(rec.produced_result());
    }
  }
  expect_equal_results(results[0], results[1], "expired budget 1 vs 2");
  expect_equal_results(results[0], results[2], "expired budget 1 vs 8");
}

TEST(ParallelRunner, InjectedCancelStaysRunLocal) {
  const Hypergraph g = testing::small_random_circuit();
  FmPartitioner fm;
  const int runs = 6;
  std::vector<MultiRunResult> results;
  for (const int threads : {1, 2, 8}) {
    // '@40' counts polls *within each run* (the dispatcher forks one
    // injector per run), so the faulting poll is schedule-independent.
    FaultInjector injector("cancel-mid-pass@40");
    DegradationLog log;
    RunContext context;
    context.injector = &injector;
    context.degradations = &log;
    results.push_back(sweep(fm, g, runs, threads, &context));
    const MultiRunResult& r = results.back();
    // The injected fault cancels its own run but is never broadcast: every
    // run is attempted and the sweep itself finishes cleanly.
    EXPECT_EQ(r.runs_attempted(), runs);
    EXPECT_TRUE(r.status.ok());
    int faulted = 0;
    for (const RunRecord& rec : r.records) {
      EXPECT_TRUE(rec.produced_result());
      if (rec.status.code == StatusCode::kInjectedFault) ++faulted;
    }
    EXPECT_EQ(faulted, runs);
  }
  expect_equal_results(results[0], results[1], "injected cancel 1 vs 2");
  expect_equal_results(results[0], results[2], "injected cancel 1 vs 8");
}

TEST(ParallelRunner, MergesDegradationsInSeedOrder) {
  const Hypergraph g = testing::small_random_circuit();
  FmPartitioner fm;
  std::vector<std::vector<std::string>> logs;
  for (const int threads : {1, 4}) {
    FaultInjector injector("cancel-mid-pass@25");
    DegradationLog log;
    RunContext context;
    context.injector = &injector;
    context.degradations = &log;
    sweep(fm, g, 5, threads, &context);
    std::vector<std::string> sites;
    for (const DegradationEvent& e : log.events()) {
      sites.push_back(e.site + "/" + e.action + "/" + e.detail);
    }
    logs.push_back(std::move(sites));
  }
  // The caller-visible degradation trail is merged in seed order, never in
  // completion order.
  EXPECT_EQ(logs[0], logs[1]);
}

}  // namespace
}  // namespace prop
