#include "timing/timing_graph.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "testutil.h"

namespace prop {
namespace {

/// Chain 0 -> 1 -> 2 -> 3 (each net's first pin drives).
Hypergraph chain4() {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  return std::move(b).build();
}

TEST(Timing, ChainArrivalTimes) {
  const TimingAnalysis sta = analyze_timing(chain4());
  EXPECT_DOUBLE_EQ(sta.arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(sta.arrival[1], 2.0);  // node + net delay
  EXPECT_DOUBLE_EQ(sta.arrival[2], 4.0);
  EXPECT_DOUBLE_EQ(sta.arrival[3], 6.0);
  EXPECT_DOUBLE_EQ(sta.critical_path, 6.0);
  EXPECT_EQ(sta.back_edges, 0u);
}

TEST(Timing, ChainIsFullyCritical) {
  const TimingAnalysis sta = analyze_timing(chain4());
  for (NetId n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(sta.net_slack[n], 0.0) << "net " << n;
    EXPECT_DOUBLE_EQ(sta.net_criticality(n), 1.0) << "net " << n;
  }
}

TEST(Timing, SideBranchHasSlack) {
  // 0 -> 1 -> 2 -> 3 critical; 0 -> 4 short branch.
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  b.add_net({0, 4});
  const Hypergraph g = std::move(b).build();
  const TimingAnalysis sta = analyze_timing(g);
  EXPECT_DOUBLE_EQ(sta.critical_path, 6.0);
  EXPECT_DOUBLE_EQ(sta.net_slack[3], 4.0);  // 4 arrives at 2, required 6
  EXPECT_LT(sta.net_criticality(3), 1.0);
  EXPECT_GT(sta.net_slack[3], sta.net_slack[0]);
}

TEST(Timing, RequiredTimesConsistent) {
  const TimingAnalysis sta = analyze_timing(chain4());
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_GE(sta.required[u] + 1e-9, sta.arrival[u]);
  }
  EXPECT_DOUBLE_EQ(sta.required[0], 0.0);
  EXPECT_DOUBLE_EQ(sta.required[3], 6.0);
}

TEST(Timing, FanoutNetSlackIsTightestEdge) {
  // Net {0, 1, 2}: 0 drives both; 1 continues into a chain, 2 is a leaf.
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2});
  b.add_net({1, 3});
  const Hypergraph g = std::move(b).build();
  const TimingAnalysis sta = analyze_timing(g);
  EXPECT_DOUBLE_EQ(sta.critical_path, 4.0);
  // Edge 0->1 has slack 0; edge 0->2 has slack 2 -> net slack 0.
  EXPECT_DOUBLE_EQ(sta.net_slack[0], 0.0);
}

TEST(Timing, CycleIsBrokenNotFatal) {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 0});  // feedback
  const Hypergraph g = std::move(b).build();
  const TimingAnalysis sta = analyze_timing(g);
  EXPECT_GE(sta.back_edges, 1u);
  EXPECT_GT(sta.critical_path, 0.0);
}

TEST(Timing, CustomDelays) {
  TimingOptions options;
  options.node_delay = 2.0;
  options.net_delay = 3.0;
  const TimingAnalysis sta = analyze_timing(chain4(), options);
  EXPECT_DOUBLE_EQ(sta.critical_path, 15.0);
}

TEST(TimingWeights, CriticalNetsGetHeavier) {
  HypergraphBuilder b(5);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  b.add_net({0, 4});  // slack-rich branch
  const Hypergraph g = std::move(b).build();
  const TimingAnalysis sta = analyze_timing(g);
  const Hypergraph weighted = apply_timing_weights(g, sta, 4.0);
  EXPECT_DOUBLE_EQ(weighted.net_cost(0), 5.0);  // criticality 1 -> 1 + 4
  EXPECT_LT(weighted.net_cost(3), 5.0);
  EXPECT_GE(weighted.net_cost(3), 1.0);
  EXPECT_FALSE(weighted.unit_net_costs());
  // Structure preserved.
  EXPECT_EQ(weighted.num_nets(), g.num_nets());
  EXPECT_EQ(weighted.num_pins(), g.num_pins());
}

TEST(TimingWeights, RejectsBadAlpha) {
  const Hypergraph g = chain4();
  const TimingAnalysis sta = analyze_timing(g);
  EXPECT_THROW(apply_timing_weights(g, sta, 0.0), std::invalid_argument);
}

TEST(Timing, WorksOnGeneratedCircuit) {
  const Hypergraph g = testing::small_random_circuit(171);
  const TimingAnalysis sta = analyze_timing(g);
  EXPECT_GT(sta.critical_path, 0.0);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    const double c = sta.net_criticality(n);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

}  // namespace
}  // namespace prop
