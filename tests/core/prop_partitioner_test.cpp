#include "core/prop_partitioner.h"

#include <gtest/gtest.h>

#include "fm/fm_partitioner.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(PropPartitioner, ResultIsValidAndBalanced) {
  const Hypergraph g = testing::small_random_circuit();
  for (const auto& balance : {BalanceConstraint::fifty_fifty(g),
                              BalanceConstraint::forty_five(g)}) {
    PropPartitioner prop_algo;
    const PartitionResult r = prop_algo.run(g, balance, 7);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(PropPartitioner, FindsPlantedCut) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner prop_algo;
  const MultiRunResult r = run_many(prop_algo, g, balance, 10, 33);
  EXPECT_LE(r.best.cut_cost, 2.0);
}

TEST(PropPartitioner, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(61);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner prop_algo;
  EXPECT_EQ(prop_algo.run(g, balance, 4).side, prop_algo.run(g, balance, 4).side);
}

TEST(PropPartitioner, NeverWorseThanInitial) {
  const Hypergraph g = testing::small_random_circuit(67);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(67);
  for (int trial = 0; trial < 5; ++trial) {
    Partition part(g, random_balanced_sides(g, balance, rng));
    const double initial = part.cut_cost();
    const RefineOutcome out = prop_refine(part, balance);
    EXPECT_LE(out.cut_cost, initial);
    EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
    EXPECT_TRUE(balance.feasible(part.side_size(0)));
  }
}

TEST(PropPartitioner, BothBootstrapsWork) {
  const Hypergraph g = testing::small_random_circuit(71);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  for (const auto bootstrap :
       {PropBootstrap::kUniform, PropBootstrap::kDeterministicGain}) {
    PropConfig config;
    config.bootstrap = bootstrap;
    PropPartitioner prop_algo(config);
    const PartitionResult r = prop_algo.run(g, balance, 2);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(PropPartitioner, BeatsOrMatchesFmOnClusteredCircuits) {
  // The headline claim (Table 2): PROP outperforms FM for the same number
  // of runs.  On a structured synthetic circuit, PROP's total over several
  // instances must not lose to FM by more than noise.
  const BalanceConstraint* balance_ptr = nullptr;
  double fm_total = 0.0;
  double prop_total = 0.0;
  for (std::uint64_t inst = 0; inst < 3; ++inst) {
    const Hypergraph g =
        testing::small_random_circuit(100 + inst, 400, 500, 1700);
    const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
    balance_ptr = &balance;
    FmPartitioner fm;
    PropPartitioner prop_algo;
    fm_total += run_many(fm, g, balance, 10, inst).best_cut();
    prop_total += run_many(prop_algo, g, balance, 10, inst).best_cut();
  }
  (void)balance_ptr;
  EXPECT_LE(prop_total, fm_total * 1.05 + 2.0);
}

TEST(PropPartitioner, RejectsInvalidModel) {
  PropConfig config;
  config.model.pmin = 0.0;
  EXPECT_THROW(PropPartitioner{config}, std::invalid_argument);
}

TEST(PropPartitioner, TopUpdateWidthZeroStillValid) {
  // Ablation guard: disabling the top-k refresh must not break validity.
  const Hypergraph g = testing::small_random_circuit(73);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropConfig config;
  config.top_update_width = 0;
  PropPartitioner prop_algo(config);
  const PartitionResult r = prop_algo.run(g, balance, 8);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(PropPartitioner, MoreRefineIterationsStillValid) {
  const Hypergraph g = testing::small_random_circuit(75);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  for (const int iters : {1, 2, 4}) {
    PropConfig config;
    config.refine_iterations = iters;
    PropPartitioner prop_algo(config);
    const PartitionResult r = prop_algo.run(g, balance, 6);
    EXPECT_TRUE(validate_result(g, balance, r).ok) << "iters=" << iters;
  }
}

}  // namespace
}  // namespace prop
