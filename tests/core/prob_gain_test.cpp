#include "core/prob_gain.h"

#include <gtest/gtest.h>

#include "fm/fm_gains.h"
#include "hypergraph/builder.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

/// 4-node fixture: net A = {0, 1} internal to side 0; net B = {0, 2} cut;
/// net C = {1, 2, 3} cut.
struct Small {
  Small() {
    HypergraphBuilder b(4);
    b.add_net({0, 1});
    b.add_net({0, 2});
    b.add_net({1, 2, 3});
    g = std::move(b).build();
    const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
    part.emplace(g, sides);
  }
  Hypergraph g;
  std::optional<Partition> part;
};

TEST(ProbGain, CutNetEquation3) {
  Small f;
  ProbGainCalculator calc(*f.part);
  calc.set_probability(0, 0.9);
  calc.set_probability(1, 0.6);
  calc.set_probability(2, 0.7);
  calc.set_probability(3, 0.5);
  // Net B = {0, 2}: g_B(0) = 1 * (empty product - p(2)) = 1 - 0.7... the
  // A-side product excluding u is empty = 1; B-side product = p(2) = 0.7.
  EXPECT_NEAR(calc.net_gain(0, 1), 1.0 - 0.7, 1e-12);
  // Net C = {1, 2, 3}, u = 1 (side 0): A-side others = {} -> 1; B-side
  // product = p(2) p(3) = 0.35.
  EXPECT_NEAR(calc.net_gain(1, 2), 1.0 - 0.35, 1e-12);
}

TEST(ProbGain, UncutNetEquation4) {
  Small f;
  ProbGainCalculator calc(*f.part);
  calc.set_probability(0, 0.9);
  calc.set_probability(1, 0.6);
  calc.set_probability(2, 0.7);
  calc.set_probability(3, 0.5);
  // Net A = {0, 1} internal: g_A(0) = -(1 - p(1)) = -0.4.
  EXPECT_NEAR(calc.net_gain(0, 0), -(1.0 - 0.6), 1e-12);
  EXPECT_NEAR(calc.net_gain(1, 0), -(1.0 - 0.9), 1e-12);
}

TEST(ProbGain, TotalIsSumOfNetGains) {
  Small f;
  ProbGainCalculator calc(*f.part);
  calc.set_probability(0, 0.9);
  calc.set_probability(1, 0.6);
  calc.set_probability(2, 0.7);
  calc.set_probability(3, 0.5);
  EXPECT_NEAR(calc.gain(0), calc.net_gain(0, 0) + calc.net_gain(0, 1), 1e-12);
  EXPECT_NEAR(calc.gain(1), calc.net_gain(1, 0) + calc.net_gain(1, 2), 1e-12);
}

TEST(ProbGain, AllProbabilitiesOneReducesToFmGain) {
  // With p = 1 everywhere, Eqn. 3 gives +-1 per net exactly like Eqn. 1 and
  // Eqn. 4 gives 0 for every uncut net whose co-pins all move...  For nets
  // where u is the sole pin on its side, both agree; in general p = 1 makes
  // the probabilistic gain an upper bound.  Verify the sole-pin case.
  HypergraphBuilder b(3);
  b.add_net({0, 1});  // cut, node 0 sole on side 0
  b.add_net({0, 2});  // cut
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 1, 1};
  const Partition part(g, sides);
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < 3; ++u) calc.set_probability(u, 1.0);
  // Each cut net: A-side others empty -> 1; B-side product = 1 -> gain 0
  // (moving u removes the net, but not moving it would also remove it).
  EXPECT_NEAR(calc.net_gain(0, 0), 0.0, 1e-12);
  // With p(other side) = 0 instead, the gain is the full +1.
  calc.set_probability(1, 0.0);
  EXPECT_NEAR(calc.net_gain(0, 0), 1.0, 1e-12);
}

TEST(ProbGain, LockedSameSideBlocksPositiveTerm) {
  Small f;
  ProbGainCalculator calc(*f.part);
  for (NodeId u = 0; u < 4; ++u) calc.set_probability(u, 0.8);
  calc.lock(1);  // side 0, shares net A (internal) with 0
  // Net A = {0, 1} internal with 1 locked: moving 0 cuts it permanently.
  EXPECT_NEAR(calc.net_gain(0, 0), -1.0, 1e-12);
}

TEST(ProbGain, LockedOtherSideZeroesNegativeTerm) {
  Small f;
  ProbGainCalculator calc(*f.part);
  for (NodeId u = 0; u < 4; ++u) calc.set_probability(u, 0.8);
  calc.lock(2);  // side 1, shares cut net B with 0
  // Eqn. 5 case: p(n^{2->1}) = 0, so g_B(0) = p-product of side-0 others = 1.
  EXPECT_NEAR(calc.net_gain(0, 1), 1.0, 1e-12);
  // Eqn. 6 case: for node 3 (side 1) on net C locked in side 1:
  // g_C(3) = -p(n^{1->2}) = -p(1).
  EXPECT_NEAR(calc.net_gain(3, 2), -0.8, 1e-12);
}

TEST(ProbGain, RemovalProbability) {
  Small f;
  ProbGainCalculator calc(*f.part);
  calc.set_probability(0, 0.9);
  calc.set_probability(1, 0.6);
  calc.set_probability(2, 0.7);
  calc.set_probability(3, 0.5);
  // Net C = {1, 2, 3}: removal toward side 1 needs side-0 pins {1} to move.
  EXPECT_NEAR(calc.removal_probability(2, 1), 0.6, 1e-12);
  EXPECT_NEAR(calc.removal_probability(2, 0), 0.7 * 0.5, 1e-12);
  calc.lock(1);
  EXPECT_NEAR(calc.removal_probability(2, 1), 0.0, 1e-12);
}

TEST(ProbGain, MoveLockedKeepsCountsConsistent) {
  const Hypergraph g = testing::small_random_circuit(83);
  Rng rng(83);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition part(g, sides);
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) calc.set_probability(u, 0.9);

  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!calc.is_free(u)) continue;
    const int from = part.side(u);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
  }
  // A fresh calculator with the same lock set must agree on every gain.
  ProbGainCalculator fresh(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (calc.is_free(u)) {
      fresh.set_probability(u, 0.9);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!calc.is_free(u)) {
      if (fresh.is_free(u)) fresh.lock(u);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (calc.is_free(u)) {
      EXPECT_NEAR(calc.gain(u), fresh.gain(u), 1e-9) << "node " << u;
    }
  }
}

/// The PROP pass relies on for_each_net_gain (side products + division)
/// agreeing with the reference per-pin net_gain (explicit iteration) — on
/// random partitions, probabilities and lock sets.
TEST(ProbGain, EmissionMatchesReferenceNetGain) {
  const Hypergraph g = testing::small_random_circuit(87);
  Rng rng(87);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition part(g, sides);
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    calc.set_probability(u, 0.4 + 0.55 * rng.uniform());
  }
  // Lock and move a handful of nodes so all lock branches are exercised.
  for (int i = 0; i < 15; ++i) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!calc.is_free(u)) continue;
    const int from = part.side(u);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
  }

  for (NetId n = 0; n < g.num_nets(); ++n) {
    calc.for_each_net_gain(n, [&](NodeId v, double gain) {
      ASSERT_TRUE(calc.is_free(v));
      EXPECT_NEAR(gain, calc.net_gain(v, n), 1e-9)
          << "net " << n << " pin " << v;
    });
  }
}

/// Summing emissions over a node's nets must reproduce gain(v).
TEST(ProbGain, EmissionSumsToTotalGain) {
  const Hypergraph g = testing::small_random_circuit(89);
  Rng rng(89);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  const Partition part(g, sides);
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    calc.set_probability(u, 0.4 + 0.55 * rng.uniform());
  }
  std::vector<double> sum(g.num_nodes(), 0.0);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    calc.for_each_net_gain(n, [&](NodeId v, double gain) { sum[v] += gain; });
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(sum[u], calc.gain(u), 1e-9) << "node " << u;
  }
}

TEST(ProbGain, GuardsAgainstMisuse) {
  Small f;
  ProbGainCalculator calc(*f.part);
  EXPECT_THROW(calc.set_probability(0, 1.5), std::invalid_argument);
  calc.lock(0);
  EXPECT_THROW(calc.lock(0), std::logic_error);
  EXPECT_THROW(calc.set_probability(0, 0.5), std::logic_error);
  EXPECT_THROW(calc.move_locked(1, 0), std::logic_error);
}

}  // namespace
}  // namespace prop
