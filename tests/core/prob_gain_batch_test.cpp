// The batched round-engine interface of ProbGainCalculator (DESIGN §4i):
// stage_probability + rebuild_products must agree with the incremental
// set_probability path, and apply_moves must agree with the sequential
// lock + Partition::move + move_locked composition.
#include "core/prob_gain.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "hypergraph/builder.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Deterministic pseudo-probabilities in (0, 1), distinct per node.
double probe_probability(NodeId u) {
  return 0.05 + 0.9 * static_cast<double>((u * 37 + 11) % 1000) / 1000.0;
}

std::vector<std::uint8_t> alternating_sides(NodeId n) {
  std::vector<std::uint8_t> sides(n);
  for (NodeId u = 0; u < n; ++u) sides[u] = static_cast<std::uint8_t>(u % 2);
  return sides;
}

TEST(ProbGainBatch, StageAndRebuildMatchesSetProbability) {
  const Hypergraph g = testing::small_random_circuit(5, 120, 150, 500);
  const Partition part(g, alternating_sides(g.num_nodes()));

  ProbGainCalculator incremental(part);
  ProbGainCalculator batched(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    incremental.set_probability(u, probe_probability(u));
    batched.stage_probability(u, probe_probability(u));
  }
  batched.rebuild_products(0, g.num_nets());

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(batched.gain(u), incremental.gain(u), 1e-9) << "node " << u;
    // Both must also match the scratch oracle exactly up to FP drift.
    EXPECT_NEAR(batched.gain(u), batched.scratch_gain(u), 1e-9);
  }
}

TEST(ProbGainBatch, PartitionedRebuildEqualsWholeRangeRebuild) {
  // rebuild_products over disjoint subranges — the per-net partitioned
  // reduction the parallel engine uses — must leave exactly the state a
  // single whole-range rebuild leaves.
  const Hypergraph g = testing::small_random_circuit(9, 80, 100, 340);
  const Partition part(g, alternating_sides(g.num_nodes()));

  ProbGainCalculator whole(part);
  ProbGainCalculator pieces(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    whole.stage_probability(u, probe_probability(u));
    pieces.stage_probability(u, probe_probability(u));
  }
  whole.rebuild_products(0, g.num_nets());
  const NetId third = g.num_nets() / 3;
  pieces.rebuild_products(0, third);
  pieces.rebuild_products(third, 2 * third);
  pieces.rebuild_products(2 * third, g.num_nets());

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(pieces.gain(u), whole.gain(u)) << "node " << u;
  }
}

TEST(ProbGainBatch, ApplyMovesMatchesSequentialLockAndMove) {
  const Hypergraph g = testing::small_random_circuit(13, 100, 130, 420);
  Partition batched_part(g, alternating_sides(g.num_nodes()));
  Partition sequential_part(g, alternating_sides(g.num_nodes()));

  ProbGainCalculator batched(batched_part);
  ProbGainCalculator sequential(sequential_part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    batched.stage_probability(u, probe_probability(u));
    sequential.set_probability(u, probe_probability(u));
  }
  batched.rebuild_products(0, g.num_nets());

  const NodeId movers[] = {3, 17, 42, 60};
  batched.apply_moves(batched_part, movers, 4);
  batched.rebuild_products(0, g.num_nets());
  for (const NodeId u : movers) {
    const int from = sequential_part.side(u);
    sequential.lock(u);
    sequential_part.move(u);
    sequential.move_locked(u, from);
  }

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(batched_part.side(u), sequential_part.side(u)) << "node " << u;
    EXPECT_EQ(batched.is_free(u), sequential.is_free(u)) << "node " << u;
    if (batched.is_free(u)) {
      EXPECT_NEAR(batched.gain(u), sequential.gain(u), 1e-9) << "node " << u;
    } else {
      EXPECT_EQ(batched.probability(u), 0.0);
    }
  }
  EXPECT_EQ(batched_part.cut_cost(), sequential_part.cut_cost());
}

TEST(ProbGainBatch, ApplyMovesRejectsLockedMoverAndForeignPartition) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  Partition part(g, alternating_sides(g.num_nodes()));
  Partition other(g, alternating_sides(g.num_nodes()));
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    calc.stage_probability(u, 0.5);
  }
  calc.rebuild_products(0, g.num_nets());

  const NodeId mover = 1;
  EXPECT_THROW(calc.apply_moves(other, &mover, 1), std::logic_error);
  calc.apply_moves(part, &mover, 1);
  EXPECT_FALSE(calc.is_free(mover));
  EXPECT_THROW(calc.apply_moves(part, &mover, 1), std::logic_error);
}

}  // namespace
}  // namespace prop
