#include "core/probability_model.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

TEST(ProbabilityModel, PaperDefaults) {
  const ProbabilityModel m;
  EXPECT_DOUBLE_EQ(m.pinit, 0.95);
  EXPECT_DOUBLE_EQ(m.pmax, 0.95);
  EXPECT_DOUBLE_EQ(m.pmin, 0.4);
  EXPECT_DOUBLE_EQ(m.gup, 1.0);
  EXPECT_DOUBLE_EQ(m.glo, -1.0);
  EXPECT_NO_THROW(m.validate());
}

TEST(ProbabilityModel, SaturatesAtThresholds) {
  const ProbabilityModel m;
  EXPECT_DOUBLE_EQ(m.from_gain(1.0), m.pmax);
  EXPECT_DOUBLE_EQ(m.from_gain(5.0), m.pmax);
  EXPECT_DOUBLE_EQ(m.from_gain(-1.0), m.pmin);
  EXPECT_DOUBLE_EQ(m.from_gain(-7.0), m.pmin);
}

TEST(ProbabilityModel, LinearInBetween) {
  const ProbabilityModel m;
  EXPECT_DOUBLE_EQ(m.from_gain(0.0), (m.pmin + m.pmax) / 2.0);
  EXPECT_DOUBLE_EQ(m.from_gain(0.5), m.pmin + 0.75 * (m.pmax - m.pmin));
}

TEST(ProbabilityModel, MonotonicallyIncreasing) {
  const ProbabilityModel m;
  double prev = 0.0;
  for (double g = -2.0; g <= 2.0; g += 0.05) {
    const double p = m.from_gain(g);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, m.pmin);
    EXPECT_LE(p, m.pmax);
    prev = p;
  }
}

TEST(ProbabilityModel, ValidateRejectsBadConfigs) {
  ProbabilityModel m;
  m.pmin = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = ProbabilityModel{};
  m.pmax = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = ProbabilityModel{};
  m.glo = 2.0;  // glo >= gup
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = ProbabilityModel{};
  m.pinit = 0.1;  // below pmin
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = ProbabilityModel{};
  m.pmin = 0.9;
  m.pmax = 0.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ProbabilityModel, PmaxOfOneAllowed) {
  // The paper: "it is not unreasonable to have pmax = 1, but pmin
  // definitely needs to be greater than 0".
  ProbabilityModel m;
  m.pmax = 1.0;
  m.pinit = 1.0;
  EXPECT_NO_THROW(m.validate());
  EXPECT_DOUBLE_EQ(m.from_gain(2.0), 1.0);
}

}  // namespace
}  // namespace prop
