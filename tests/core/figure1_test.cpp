// End-to-end reproduction of the paper's Figure 1 worked example — the
// strongest correctness anchor in the suite: FM gains (Fig. 1a), LA-3
// vectors (Fig. 1a), and the probabilistic gains of the second iteration
// (Fig. 1c) must come out numerically exact.
#include <gtest/gtest.h>

#include "core/figure1_example.h"
#include "core/prob_gain.h"
#include "core/probability_model.h"
#include "fm/fm_gains.h"
#include "la/la_gains.h"
#include "partition/partition.h"

namespace prop {
namespace {

class Figure1 : public ::testing::Test {
 protected:
  Figure1() : ex_(make_figure1_example()), part_(ex_.graph, ex_.side) {}

  ProbGainCalculator make_calc() const {
    ProbGainCalculator calc(part_);
    for (NodeId u = 0; u < ex_.graph.num_nodes(); ++u) {
      calc.set_probability(u, ex_.initial_probability[u]);
    }
    return calc;
  }

  Figure1Example ex_;
  Partition part_;
};

TEST_F(Figure1, NetlistShape) {
  EXPECT_EQ(ex_.graph.num_nets(), 17u);
  // Nets n1..n11 are cut, n12..n17 are internal to V1.
  for (int j = 1; j <= 11; ++j) EXPECT_TRUE(part_.is_cut(ex_.net(j))) << j;
  for (int j = 12; j <= 17; ++j) EXPECT_FALSE(part_.is_cut(ex_.net(j))) << j;
  EXPECT_DOUBLE_EQ(part_.cut_cost(), 11.0);
}

TEST_F(Figure1, FmCannotSeparateNodes123) {
  EXPECT_DOUBLE_EQ(fm_gain(part_, ex_.node(1)), 2.0);
  EXPECT_DOUBLE_EQ(fm_gain(part_, ex_.node(2)), 2.0);
  EXPECT_DOUBLE_EQ(fm_gain(part_, ex_.node(3)), 2.0);
}

TEST_F(Figure1, La3SeparatesNode1ButNot2From3) {
  LaGainCalculator la(part_, 3);
  const GainVector g1 = la.gain(ex_.node(1));
  const GainVector g2 = la.gain(ex_.node(2));
  const GainVector g3 = la.gain(ex_.node(3));
  EXPECT_EQ(g1.to_string(), "(2,0,0)");
  EXPECT_EQ(g2.to_string(), "(2,0,1)");
  EXPECT_EQ(g3.to_string(), "(2,0,1)");
  EXPECT_LT(g1, g2);
  EXPECT_EQ(g2, g3);  // "increasing the lookahead ... does not change this"
}

TEST_F(Figure1, La4StillCannotSeparate2From3) {
  LaGainCalculator la(part_, 4);
  EXPECT_EQ(la.gain(ex_.node(2)), la.gain(ex_.node(3)));
}

TEST_F(Figure1, PropSecondIterationGains) {
  const ProbGainCalculator calc = make_calc();
  // Per-net pieces quoted in Sec. 3.3.
  EXPECT_NEAR(calc.net_gain(ex_.node(1), ex_.net(1)), 1.0, 1e-12);
  EXPECT_NEAR(calc.net_gain(ex_.node(1), ex_.net(2)), 1.0, 1e-12);
  EXPECT_NEAR(calc.net_gain(ex_.node(1), ex_.net(9)), 0.0016, 1e-12);
  EXPECT_NEAR(calc.net_gain(ex_.node(2), ex_.net(10)), 0.04, 1e-12);
  EXPECT_NEAR(calc.net_gain(ex_.node(3), ex_.net(11)), 0.64, 1e-12);

  // Totals of Fig. 1c.
  EXPECT_NEAR(calc.gain(ex_.node(1)), 2.0016, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(2)), 2.04, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(3)), 2.64, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(10)), 1.8, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(11)), 1.8, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(8)), -0.3, 1e-12);
  EXPECT_NEAR(calc.gain(ex_.node(9)), -0.3, 1e-12);
  for (int k = 4; k <= 7; ++k) {
    EXPECT_NEAR(calc.gain(ex_.node(k)), -0.492, 1e-12) << "node " << k;
  }
}

TEST_F(Figure1, PropRanksNode3First) {
  // The paper's punchline: PROP uniquely identifies node 3 as the best
  // move, which FM and LA cannot.
  const ProbGainCalculator calc = make_calc();
  const double g3 = calc.gain(ex_.node(3));
  for (int k = 1; k <= 11; ++k) {
    if (k == 3) continue;
    EXPECT_GT(g3, calc.gain(ex_.node(k))) << "node " << k;
  }
}

TEST_F(Figure1, ProbabilitiesFromGainsSaturateForTopNodes) {
  // Sec. 3.3: with gup = 2 the p(u)s of nodes 1, 2, 3 are all 1 — selection
  // must then be by gain, not probability.
  ProbabilityModel model;
  model.pmax = 1.0;
  model.pinit = 1.0;
  model.gup = 2.0;
  model.glo = -1.0;
  const ProbGainCalculator calc = make_calc();
  for (int k = 1; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(model.from_gain(calc.gain(ex_.node(k))), 1.0);
  }
  EXPECT_LT(model.from_gain(calc.gain(ex_.node(4))), 1.0);
}

}  // namespace
}  // namespace prop
