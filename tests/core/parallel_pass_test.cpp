// The deterministic round engine (DESIGN §4i): byte-identical partitions
// and pass stats for every pass_threads >= 1, validity/monotonicity of the
// round schedule, and engine-equivalence of the gain backends under it.
#include <gtest/gtest.h>

#include <vector>

#include "core/prop_partitioner.h"
#include "partition/initial.h"
#include "partition/validate.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

PropConfig round_config(int pass_threads) {
  PropConfig config;
  config.pass_threads = pass_threads;
  return config;
}

TEST(ParallelPass, ByteIdenticalAcrossThreadCounts) {
  // pass_threads = 1 is the serial reference execution of the round
  // engine; every higher thread count must reproduce it exactly — same
  // sides, same cut — on both a random and a planted-structure circuit.
  const Hypergraph circuits[] = {testing::small_random_circuit(61),
                                 testing::chain_of_blocks(8, 8)};
  for (const Hypergraph& g : circuits) {
    const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
    PropPartitioner reference(round_config(1));
    const PartitionResult want = reference.run(g, balance, 9);
    for (const int threads : {2, 3, 4}) {
      PropPartitioner prop_algo(round_config(threads));
      const PartitionResult got = prop_algo.run(g, balance, 9);
      EXPECT_EQ(got.side, want.side) << "pass_threads=" << threads;
      EXPECT_EQ(got.cut_cost, want.cut_cost) << "pass_threads=" << threads;
    }
  }
}

TEST(ParallelPass, PassStatsIdenticalAcrossThreadCounts) {
  // Not just the final sides: every counter the pass reports (moves,
  // rounds, accepted prefix, its gain) is part of the determinism
  // contract.  Exact equality on the doubles is intentional.
  const Hypergraph g = testing::small_random_circuit(17);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(17);
  const auto sides = random_balanced_sides(g, balance, rng);

  std::vector<PassStats> want;
  {
    Partition part(g, sides);
    const PropConfig config = round_config(1);
    PropRefiner refiner(part, balance, config);
    for (int pass = 0; pass < 3; ++pass) {
      PassStats stats;
      refiner.run_pass(&stats);
      want.push_back(stats);
    }
  }
  for (const int threads : {2, 4}) {
    Partition part(g, sides);
    const PropConfig config = round_config(threads);
    PropRefiner refiner(part, balance, config);
    for (int pass = 0; pass < 3; ++pass) {
      PassStats stats;
      refiner.run_pass(&stats);
      EXPECT_EQ(stats.moves_attempted, want[pass].moves_attempted);
      EXPECT_EQ(stats.moves_accepted, want[pass].moves_accepted);
      EXPECT_EQ(stats.rounds, want[pass].rounds);
      EXPECT_EQ(stats.best_prefix_gain, want[pass].best_prefix_gain);
    }
  }
}

TEST(ParallelPass, RoundEngineIsValidBalancedAndNeverWorse) {
  const Hypergraph g = testing::small_random_circuit(67);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  for (const int threads : {1, 2}) {
    Rng rng(67);
    for (int trial = 0; trial < 3; ++trial) {
      Partition part(g, random_balanced_sides(g, balance, rng));
      const double initial = part.cut_cost();
      const RefineOutcome out = prop_refine(part, balance,
                                            round_config(threads));
      EXPECT_LE(out.cut_cost, initial);
      EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
      EXPECT_TRUE(balance.feasible(part.side_size(0)));
    }
  }
}

TEST(ParallelPass, RoundEngineCountsRounds) {
  const Hypergraph g = testing::small_random_circuit(23);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(23);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const PropConfig config = round_config(2);
  PropRefiner refiner(part, balance, config);
  PassStats stats;
  refiner.run_pass(&stats);
  EXPECT_GT(stats.rounds, 0u);
  // Each round commits at least one move (or ends the pass), so the round
  // count never exceeds the speculative move count.
  EXPECT_LE(stats.rounds, stats.moves_attempted);
}

TEST(ParallelPass, ShadowEngineReproducesScratchUnderRoundEngine) {
  // Engine equivalence under the round engine: kShadow answers every gain
  // query through the scratch oracle while maintaining AND cross-checking
  // the cached products of each rebuilt round (it throws on divergence
  // beyond kProductAuditTol), so a shadow run must reproduce the scratch
  // run exactly.  kCached is asserted valid but not bit-compared — its
  // gains legitimately differ from scratch in the last ulp (product
  // division vs pin-order multiplication), which can flip tie-breaks.
  const Hypergraph g = testing::small_random_circuit(43);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PartitionResult by_engine[3];
  int i = 0;
  for (const auto engine :
       {GainEngine::kScratch, GainEngine::kShadow, GainEngine::kCached}) {
    PropConfig config = round_config(2);
    config.gain_engine = engine;
    PropPartitioner prop_algo(config);
    by_engine[i] = prop_algo.run(g, balance, 5);
    const ValidationReport report = validate_result(g, balance, by_engine[i]);
    EXPECT_TRUE(report.ok) << to_string(engine) << ": " << report.message;
    ++i;
  }
  EXPECT_EQ(by_engine[1].side, by_engine[0].side);  // shadow == scratch
  EXPECT_EQ(by_engine[1].cut_cost, by_engine[0].cut_cost);
}

TEST(ParallelPass, FullSweepRoundsReproduceActiveSetExactly) {
  // §4k identity contract: disabling the active set (full_sweep_rounds =
  // true re-sweeps every free node and rebuilds every net each round) must
  // not change a single byte of the result — the dirty set only skips
  // recomputations whose inputs are bitwise unchanged.
  const Hypergraph circuits[] = {testing::small_random_circuit(61),
                                 testing::chain_of_blocks(8, 8)};
  for (const Hypergraph& g : circuits) {
    const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
    for (const int threads : {1, 2}) {
      PropConfig full_config = round_config(threads);
      full_config.full_sweep_rounds = true;
      PropPartitioner active(round_config(threads));
      PropPartitioner full(full_config);
      const PartitionResult a = active.run(g, balance, 9);
      const PartitionResult f = full.run(g, balance, 9);
      EXPECT_EQ(a.side, f.side) << "pass_threads=" << threads;
      EXPECT_EQ(a.cut_cost, f.cut_cost) << "pass_threads=" << threads;
    }
  }
}

TEST(ParallelPass, FullSweepPassStatsMatchActiveSet) {
  // Pass-level counters too, not just the final sides: the active set may
  // not change what the schedule attempts or accepts.
  const Hypergraph g = testing::small_random_circuit(17);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(17);
  const auto sides = random_balanced_sides(g, balance, rng);
  for (const int threads : {1, 2}) {
    Partition active_part(g, sides);
    Partition full_part(g, sides);
    PropConfig full_config = round_config(threads);
    full_config.full_sweep_rounds = true;
    const PropConfig active_config = round_config(threads);
    PropRefiner active(active_part, balance, active_config);
    PropRefiner full(full_part, balance, full_config);
    for (int pass = 0; pass < 3; ++pass) {
      PassStats a, f;
      active.run_pass(&a);
      full.run_pass(&f);
      EXPECT_EQ(a.moves_attempted, f.moves_attempted) << "pass " << pass;
      EXPECT_EQ(a.moves_accepted, f.moves_accepted) << "pass " << pass;
      EXPECT_EQ(a.rounds, f.rounds) << "pass " << pass;
      EXPECT_EQ(a.best_prefix_gain, f.best_prefix_gain) << "pass " << pass;
    }
  }
}

TEST(ParallelPass, RoundsPerBarrierIsOutputNeutral) {
  // The barrier batch size only decides which rounds engage the worker
  // pool; the schedule itself is unchanged for every value.
  const Hypergraph g = testing::small_random_circuit(37);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner reference(round_config(2));
  const PartitionResult want = reference.run(g, balance, 11);
  for (const int rpb : {2, 3, 7}) {
    PropConfig config = round_config(2);
    config.rounds_per_barrier = rpb;
    PropPartitioner algo(config);
    const PartitionResult got = algo.run(g, balance, 11);
    EXPECT_EQ(got.side, want.side) << "rounds_per_barrier=" << rpb;
    EXPECT_EQ(got.cut_cost, want.cut_cost) << "rounds_per_barrier=" << rpb;
  }
}

TEST(ParallelPass, SequentialEngineIsUntouchedByDefault) {
  // pass_threads = 0 must keep producing exactly what the pre-round-engine
  // sequential path produced: the default-config run and an explicit
  // pass_threads = 0 run are the same object code path.
  const Hypergraph g = testing::small_random_circuit(29);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner defaulted;
  PropPartitioner explicit_zero(round_config(0));
  const PartitionResult a = defaulted.run(g, balance, 3);
  const PartitionResult b = explicit_zero.run(g, balance, 3);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut_cost, b.cut_cost);
}

}  // namespace
}  // namespace prop
