// Randomized property suite for the cached-product gain engine (DESIGN.md
// Sec. 4f).  Drives thousands of random set_probability / lock / locked-move
// operations — the exact mutation alphabet of a PROP pass — against a
// ProbGainCalculator with a deliberately tiny renormalization epoch, and
// checks the cache's contract at every step:
//
//   * gain(u) under kCached agrees with the scratch_gain(u) oracle within
//     the drift bound at every sampled query;
//   * max_product_drift() never exceeds kProductAuditTol between epochs;
//   * renormalize_all() restores *bit-exact* agreement with an in-pin-order
//     scratch recompute (max_product_drift() == 0.0, not merely small);
//   * audit_consistency() (zero counters, reciprocals, locked-pin table)
//     holds at every checkpoint;
//   * kShadow sequences never trip the per-query cross-check;
//   * the full PROP pass loop stays consistent when the prop-drift fault
//     site forces emergency resyncs mid-pass.
#include "core/prob_gain.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/prop_partitioner.h"
#include "hypergraph/generator.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "runtime/run_context.h"
#include "util/rng.h"

namespace prop {
namespace {

Hypergraph property_circuit(std::uint64_t seed) {
  return generate_circuit({"gain-prop", 300, 380, 1400}, seed);
}

/// Probability palette hitting the cache's edge cases: exact zero (the
/// zero-factor counters), near-underflow tiny values (products leave
/// [kRenormMagLo, kRenormMagHi] and force magnitude renormalization), the
/// exact 1.0 fixed point, and the ordinary open interval.
double random_probability(Rng& rng) {
  const auto r = rng.bounded(100);
  if (r < 10) return 0.0;
  if (r < 18) return 1e-60 * (1.0 + rng.uniform());
  if (r < 26) return 1.0;
  return 0.01 + 0.99 * rng.uniform();
}

/// Runs `ops` random mutations with periodic consistency checkpoints.
/// Returns the number of oracle comparisons performed (so tests can assert
/// the sequence actually exercised the query path).
int run_sequence(GainEngine engine, std::uint64_t seed, int ops,
                 int renorm_interval) {
  const Hypergraph g = property_circuit(seed);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  Rng rng(mix_seed(seed, 77));
  Partition part(g, random_balanced_sides(g, balance, rng));
  ProbGainCalculator calc(part, engine, renorm_interval);

  const NodeId n = g.num_nodes();
  const auto reinit = [&] {
    calc.reset();
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, random_probability(rng));
    }
  };
  reinit();

  int comparisons = 0;
  int free_count = static_cast<int>(n);
  for (int op = 0; op < ops; ++op) {
    // Pass boundary once the sequence has locked most of the circuit.
    if (free_count < static_cast<int>(n) / 5) {
      reinit();
      free_count = static_cast<int>(n);
    }
    const NodeId u = static_cast<NodeId>(rng.bounded(n));
    const auto r = rng.bounded(100);
    if (r < 55) {
      if (calc.is_free(u)) calc.set_probability(u, random_probability(rng));
    } else if (r < 80) {
      if (calc.is_free(u)) {
        // The pass engine's accepted-move protocol: lock, flip the
        // partition, tell the calculator about the locked move.
        const int from = part.side(u);
        calc.lock(u);
        part.move(u);
        calc.move_locked(u, from);
        --free_count;
      }
    } else if (r < 90) {
      if (calc.is_free(u)) {
        calc.lock(u);  // rejected-candidate lock: no side change
        --free_count;
      }
    } else {
      // Oracle comparison on a random node (locked nodes have gain too —
      // their probability is pinned at 0 but the query must still agree).
      const double fast = calc.gain(u);
      const double oracle = calc.scratch_gain(u);
      const double tol = ProbGainCalculator::kProductAuditTol *
                         static_cast<double>(g.degree(u) + 1);
      EXPECT_NEAR(fast, oracle, tol)
          << "op " << op << " node " << u << " engine "
          << to_string(engine);
      ++comparisons;
    }

    if ((op + 1) % 512 == 0) {
      EXPECT_NO_THROW(calc.audit_consistency()) << "op " << op;
      EXPECT_LE(calc.max_product_drift(),
                ProbGainCalculator::kProductAuditTol)
          << "op " << op;
    }
    if ((op + 1) % 2048 == 0) {
      calc.renormalize_all();
      // Bit-exact, not approximate: the renormalized cache must equal an
      // in-pin-order scratch recompute factor for factor.
      EXPECT_EQ(calc.max_product_drift(), 0.0) << "op " << op;
    }
  }
  EXPECT_NO_THROW(calc.audit_consistency());
  return comparisons;
}

TEST(ProbGainProperty, CachedMatchesScratchOracleUnderRandomSequences) {
  // A tiny epoch (5) exercises renormalization hundreds of times per
  // sequence instead of hiding it behind the production default of 128.
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    const int comparisons = run_sequence(GainEngine::kCached, seed, 3500, 5);
    EXPECT_GT(comparisons, 100) << "seed " << seed;
  }
}

TEST(ProbGainProperty, CachedHoldsAtProductionEpochLength) {
  run_sequence(GainEngine::kCached, 101, 3000,
               ProbGainCalculator::kDefaultRenormInterval);
}

TEST(ProbGainProperty, ShadowCrossCheckNeverFires) {
  // Every gain() under kShadow throws std::logic_error if the cached
  // answer drifts past kProductAuditTol from the scratch one, so simply
  // surviving the sequence is the assertion.
  EXPECT_NO_THROW(run_sequence(GainEngine::kShadow, 71, 3000, 5));
}

TEST(ProbGainProperty, RenormalizationIsBitExactAfterTinyProbabilityBursts) {
  const Hypergraph g = property_circuit(5);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  Rng rng(mix_seed(5, 13));
  Partition part(g, random_balanced_sides(g, balance, rng));
  ProbGainCalculator calc(part, GainEngine::kCached, 3);
  calc.reset();
  const NodeId n = g.num_nodes();
  // Drive every product toward the magnitude floor, then away from it:
  // each transition multiplies by ~1e±60 and must renormalize rather than
  // underflow or divide by a degenerate value.
  for (int round = 0; round < 6; ++round) {
    const bool tiny = (round % 2 == 0);
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, tiny ? 1e-60 : 0.5 + 0.5 * rng.uniform());
    }
    EXPECT_NO_THROW(calc.audit_consistency()) << "round " << round;
    calc.renormalize_all();
    EXPECT_EQ(calc.max_product_drift(), 0.0) << "round " << round;
  }
}

TEST(ProbGainProperty, DirtySweepsReproduceFullSweepsBitwise) {
  // The §4k active-set contract: with tracking on, a gains array that is
  // re-swept only over the pins of dirty nets after each mutation batch —
  // and fully re-swept after a full-state invalidation (reset,
  // renormalize_all) — stays BITWISE equal to a fresh gain(u) recompute at
  // every checkpoint.  The mutation alphabet is the full pass vocabulary:
  // probability updates, rejected-candidate locks, accepted locked moves,
  // epoch renormalizations and pass-boundary resets, at a tiny renorm
  // interval so renormalize_all fires often.
  for (const std::uint64_t seed : {13ULL, 29ULL}) {
    const Hypergraph g = property_circuit(seed);
    const BalanceConstraint balance = BalanceConstraint::forty_five(g);
    Rng rng(mix_seed(seed, 91));
    Partition part(g, random_balanced_sides(g, balance, rng));
    ProbGainCalculator calc(part, GainEngine::kCached, 5);
    calc.set_dirty_tracking(true);
    const NodeId n = g.num_nodes();

    std::vector<double> gains(n, 0.0);
    const auto resweep = [&] {
      if (calc.all_dirty()) {
        for (NodeId u = 0; u < n; ++u) gains[u] = calc.gain(u);
      } else {
        for (const NetId net : calc.dirty_nets()) {
          for (const NodeId v : g.pins_of(net)) gains[v] = calc.gain(v);
        }
      }
      calc.clear_dirty();
    };
    const auto reinit = [&] {
      calc.reset();
      for (NodeId u = 0; u < n; ++u) {
        calc.set_probability(u, random_probability(rng));
      }
      resweep();
    };
    reinit();

    int free_count = static_cast<int>(n);
    for (int op = 0; op < 2500; ++op) {
      if (free_count < static_cast<int>(n) / 5) {
        reinit();
        free_count = static_cast<int>(n);
      }
      const NodeId u = static_cast<NodeId>(rng.bounded(n));
      const auto r = rng.bounded(100);
      if (r < 60) {
        if (calc.is_free(u)) calc.set_probability(u, random_probability(rng));
      } else if (r < 80) {
        if (calc.is_free(u)) {
          const int from = part.side(u);
          calc.lock(u);
          part.move(u);
          calc.move_locked(u, from);
          --free_count;
        }
      } else if (r < 95) {
        if (calc.is_free(u)) {
          calc.lock(u);
          --free_count;
        }
      } else {
        calc.renormalize_all();  // must raise all_dirty()
        EXPECT_TRUE(calc.all_dirty()) << "op " << op;
      }

      if ((op + 1) % 64 == 0) resweep();
      if ((op + 1) % 256 == 0) {
        // The checkpoint IS the property: not a single stale entry.
        for (NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(gains[v], calc.gain(v))
              << "seed " << seed << " op " << op << " node " << v;
        }
      }
    }
  }
}

TEST(ProbGainProperty, StagedBatchesFoldIntoDirtySetExactly) {
  // The round engine's dirty-restricted rebuild (stage_probability over
  // node chunks, note_staged_changes fold, rebuild_products_for over the
  // dirty nets ONLY) must leave every gain bitwise equal to a twin
  // calculator that stages the same batch but rebuilds ALL nets — i.e. the
  // dirty set provably covers every net whose stored product the batch
  // could have changed, and skipping the clean nets loses nothing.
  const Hypergraph g = property_circuit(17);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  Rng rng(mix_seed(17, 55));
  Partition part(g, random_balanced_sides(g, balance, rng));
  Partition twin_part(g, part.sides());
  ProbGainCalculator restricted(part, GainEngine::kCached);
  ProbGainCalculator full(twin_part, GainEngine::kCached);
  restricted.set_dirty_tracking(true);
  const NodeId n = g.num_nodes();
  const NetId m = g.num_nets();
  restricted.reset();
  full.reset();
  for (NodeId u = 0; u < n; ++u) {
    const double p = random_probability(rng);
    restricted.stage_probability(u, p);
    full.stage_probability(u, p);
  }
  restricted.note_staged_changes_all();
  restricted.rebuild_products(0, m);
  restricted.clear_dirty();
  full.rebuild_products(0, m);

  std::vector<NodeId> batch;
  for (int round = 0; round < 40; ++round) {
    batch.clear();
    const int batch_size = 1 + static_cast<int>(rng.bounded(24));
    for (int i = 0; i < batch_size; ++i) {
      const NodeId u = static_cast<NodeId>(rng.bounded(n));
      const double p = random_probability(rng);
      restricted.stage_probability(u, p);
      full.stage_probability(u, p);
      batch.push_back(u);
    }
    restricted.note_staged_changes(batch.data(), batch.size());
    const auto& dirty = restricted.dirty_nets();
    restricted.rebuild_products_for(dirty.data(), 0, dirty.size());
    restricted.clear_dirty();
    full.rebuild_products(0, m);
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(restricted.gain(u), full.gain(u))
          << "round " << round << " node " << u;
    }
    EXPECT_NO_THROW(restricted.audit_consistency()) << "round " << round;
  }
}

TEST(ProbGainProperty, InjectedDriftResyncsPreserveActiveSetIdentity) {
  // Fault injection meets the §4k identity contract: a prop-drift injector
  // forces emergency renormalize_all resyncs mid-pass, each of which must
  // raise all_dirty() and route the next round through a full sweep.  The
  // active-set and full-sweep-rounds schedules see the same resync points
  // (the schedule is identical by the identity contract), so the two runs
  // must still produce byte-identical partitions under injection.
  const Hypergraph g = property_circuit(21);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  PartitionResult by_mode[2];
  for (const bool full_sweep : {false, true}) {
    PropConfig config;
    config.pass_threads = 2;
    config.full_sweep_rounds = full_sweep;
    config.audit_interval = 16;
    config.max_emergency_resyncs = 2;
    PropPartitioner algo(config);
    FaultInjector injector("prop-drift~0.02", 99);
    DegradationLog log;
    RunContext context;
    context.injector = &injector;
    context.degradations = &log;
    const RunOutcome outcome = run_checked(algo, g, balance, 17, &context);
    ASSERT_TRUE(outcome.has_result()) << "full_sweep=" << full_sweep;
    const ValidationReport report =
        validate_result(g, balance, outcome.result);
    EXPECT_TRUE(report.ok) << report.message;
    by_mode[full_sweep ? 1 : 0] = outcome.result;
  }
  EXPECT_EQ(by_mode[0].side, by_mode[1].side);
  EXPECT_EQ(by_mode[0].cut_cost, by_mode[1].cut_cost);
}

TEST(ProbGainProperty, InjectedDriftResyncsKeepPassConsistent) {
  // The prop-drift fault site forces emergency resyncs mid-pass; with the
  // auditor armed at a tight cadence, any cache corruption those resyncs
  // exposed would throw std::logic_error out of run_checked.
  const Hypergraph g = property_circuit(9);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  for (const GainEngine engine : {GainEngine::kCached, GainEngine::kShadow}) {
    PropConfig config;
    config.gain_engine = engine;
    config.audit_interval = 16;
    config.max_emergency_resyncs = 2;
    PropPartitioner algo(config);
    FaultInjector injector("prop-drift~0.02", 99);
    DegradationLog log;
    RunContext context;
    context.injector = &injector;
    context.degradations = &log;
    const RunOutcome outcome = run_checked(algo, g, balance, 17, &context);
    ASSERT_TRUE(outcome.has_result()) << to_string(engine);
    const ValidationReport report = validate_result(g, balance, outcome.result);
    EXPECT_TRUE(report.ok) << to_string(engine) << ": " << report.message;
    EXPECT_FALSE(outcome.degradations.empty()) << to_string(engine);
  }
}

}  // namespace
}  // namespace prop
