// Multilevel V-cycle driver: clustering invariants, hierarchy facts,
// partition validity under both refiners, determinism (including the
// run_many thread-count contract), and deadline robustness.
#include "multilevel/multilevel_driver.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "partition/runner.h"
#include "partition/validate.h"
#include "runtime/run_context.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(AttractionClusters, DenseCompleteAndCoarsening) {
  const Hypergraph g = testing::small_random_circuit(21);
  Rng rng(5);
  NodeId num_clusters = 0;
  const std::vector<NodeId> cluster_of = attraction_clusters(
      g, rng, g.total_node_size() / 8, 64, num_clusters);
  ASSERT_EQ(cluster_of.size(), g.num_nodes());
  ASSERT_GT(num_clusters, 0u);
  std::vector<int> members(num_clusters, 0);
  for (const NodeId c : cluster_of) {
    ASSERT_LT(c, num_clusters);
    ++members[c];
  }
  // Dense id space: contract() sees no phantom clusters from this caller.
  for (const int m : members) EXPECT_GT(m, 0);
  // And it actually coarsens a connected circuit.
  EXPECT_LT(num_clusters, g.num_nodes());
}

TEST(AttractionClusters, RespectsWeightCap) {
  const Hypergraph g = testing::small_random_circuit(23);
  Rng rng(6);
  const std::int64_t cap = 4;  // unit node sizes: every node fits alone
  NodeId num_clusters = 0;
  const std::vector<NodeId> cluster_of =
      attraction_clusters(g, rng, cap, 64, num_clusters);
  std::vector<std::int64_t> weight(num_clusters, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    weight[cluster_of[u]] += g.node_size(u);
  }
  for (const std::int64_t w : weight) EXPECT_LE(w, cap);
}

TEST(AttractionClusters, DeterministicInRngSeed) {
  const Hypergraph g = testing::small_random_circuit(27);
  NodeId n1 = 0;
  NodeId n2 = 0;
  Rng a(99);
  Rng b(99);
  const auto c1 = attraction_clusters(g, a, 20, 64, n1);
  const auto c2 = attraction_clusters(g, b, 20, 64, n2);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(c1, c2);
}

TEST(Multilevel, BuildsHierarchyAndValidPartition) {
  const Hypergraph g = testing::small_random_circuit(25, 400, 520, 1600);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  MultilevelConfig config;
  config.coarsest_max_nodes = 50;
  const MultilevelResult r = multilevel_partition(g, balance, 3, config);
  EXPECT_GE(r.levels, 1);
  EXPECT_LE(r.coarsest_nodes, config.coarsest_max_nodes);
  EXPECT_FALSE(r.interrupted);
  const ValidationReport report = validate_result(g, balance, r.part);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Multilevel, RunsFlatWhenAlreadySmall) {
  const Hypergraph g = testing::chain_of_blocks(4, 6);  // 24 nodes < 200
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  const MultilevelResult r = multilevel_partition(g, balance, 1);
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.coarsest_nodes, g.num_nodes());
  EXPECT_TRUE(validate_result(g, balance, r.part).ok);
}

TEST(Multilevel, RecoversPlantedChainStructure) {
  const Hypergraph g = testing::chain_of_blocks(16, 16);  // optimal cut = 1
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  MultilevelConfig config;
  config.coarsest_max_nodes = 32;
  const MultilevelResult r = multilevel_partition(g, balance, 2, config);
  EXPECT_LE(r.part.cut_cost, 2.0);
  EXPECT_TRUE(validate_result(g, balance, r.part).ok);
}

TEST(Multilevel, BothRefinersProduceValidPartitions) {
  const Hypergraph g = testing::small_random_circuit(29, 300, 390, 1200);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  for (const MlRefiner refiner : {MlRefiner::kProp, MlRefiner::kFm}) {
    MultilevelConfig config;
    config.refiner = refiner;
    config.coarsest_max_nodes = 40;
    MultilevelPartitioner algo(config);
    const PartitionResult r = algo.run(g, balance, 7);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << algo.name() << ": " << report.message;
  }
}

TEST(Multilevel, DeterministicInSeedAndUnderClone) {
  const Hypergraph g = testing::small_random_circuit(31, 300, 390, 1200);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  MultilevelPartitioner algo;
  const PartitionResult a = algo.run(g, balance, 5);
  const PartitionResult b = algo.run(g, balance, 5);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut_cost, b.cut_cost);
  const std::unique_ptr<Bipartitioner> copy = algo.clone();
  const PartitionResult c = copy->run(g, balance, 5);
  EXPECT_EQ(a.side, c.side);
}

TEST(Multilevel, RunManyStatsIdenticalAcrossThreadCounts) {
  const Hypergraph g = testing::small_random_circuit(33, 300, 390, 1200);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  MultilevelPartitioner algo;
  RunnerOptions sequential;
  sequential.collect_telemetry = true;
  sequential.threads = 0;
  RunnerOptions parallel = sequential;
  parallel.threads = 3;
  const MultiRunResult a = run_many(algo, g, balance, 4, 9, sequential);
  const MultiRunResult b = run_many(algo, g, balance, 4, 9, parallel);
  StatsJsonOptions json;
  json.include_timing = false;
  std::ostringstream sa;
  std::ostringstream sb;
  write_stats_json(sa, g.name(), algo.name(), a, json);
  write_stats_json(sb, g.name(), algo.name(), b, json);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Multilevel, ExpiredDeadlineStillReturnsValidBalancedPartition) {
  const Hypergraph g = testing::small_random_circuit(35, 400, 520, 1600);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  CancelToken cancel((Deadline::after_ms(0.0)));
  RunContext context;
  context.cancel = &cancel;
  MultilevelConfig config;
  config.coarsest_max_nodes = 50;
  MultilevelPartitioner algo(config);
  algo.attach_context(&context);
  const MultilevelResult r =
      multilevel_partition(g, balance, 4, algo.config());
  EXPECT_TRUE(r.interrupted);
  const ValidationReport report = validate_result(g, balance, r.part);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Multilevel, InjectedCancellationViaRunChecked) {
  const Hypergraph g = testing::small_random_circuit(37, 300, 390, 1200);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  CancelToken cancel{Deadline::never()};
  FaultInjector injector("cancel-mid-pass@40");
  RunContext context;
  context.cancel = &cancel;
  context.injector = &injector;
  MultilevelConfig config;
  config.coarsest_max_nodes = 40;
  MultilevelPartitioner algo(config);
  const RunOutcome outcome = run_checked(algo, g, balance, 11, &context);
  ASSERT_TRUE(outcome.has_result());
  EXPECT_EQ(outcome.status.code, StatusCode::kInjectedFault);
  const ValidationReport report = validate_result(g, balance, outcome.result);
  EXPECT_TRUE(report.ok) << report.message;
}

}  // namespace
}  // namespace prop
