#include "kl/kl_partitioner.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Kl, FindsPlantedCutOnChain) {
  const Hypergraph g = testing::chain_of_blocks(4, 8);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner kl;
  const MultiRunResult r = run_many(kl, g, balance, 10, 13);
  EXPECT_LE(r.best.cut_cost, 2.0);
}

TEST(Kl, SwapsPreserveExactBalance) {
  const Hypergraph g = testing::small_random_circuit(151);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(151);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const std::int64_t size0 = part.side_size(0);
  kl_refine(part, balance);
  EXPECT_EQ(part.side_size(0), size0);  // pair swaps never change sizes
}

TEST(Kl, NeverWorseThanInitial) {
  const Hypergraph g = testing::small_random_circuit(153);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(153);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const double initial = part.cut_cost();
  const RefineOutcome out = kl_refine(part, balance);
  EXPECT_LE(out.cut_cost, initial);
  EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
}

TEST(Kl, ResultIsValid) {
  const Hypergraph g = testing::small_random_circuit(155);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner kl;
  const PartitionResult r = kl.run(g, balance, 3);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Kl, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(157);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner kl;
  EXPECT_EQ(kl.run(g, balance, 9).side, kl.run(g, balance, 9).side);
}

TEST(Kl, WiderCandidatePoolNoWorseOnAverage) {
  const Hypergraph g = testing::small_random_circuit(159, 150, 190, 620);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner narrow({/*candidate_width=*/1});
  KlPartitioner wide({/*candidate_width=*/12});
  double narrow_total = 0.0;
  double wide_total = 0.0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    narrow_total += narrow.run(g, balance, s).cut_cost;
    wide_total += wide.run(g, balance, s).cut_cost;
  }
  EXPECT_LE(wide_total, narrow_total * 1.10 + 3.0);
}

TEST(Kl, RejectsWeightedNodes) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.set_node_size(0, 3);
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fraction(g, 0.3, 0.7);
  Rng rng(1);
  Partition part(g, random_balanced_sides(g, balance, rng));
  EXPECT_THROW(kl_refine(part, balance), std::invalid_argument);
}

}  // namespace
}  // namespace prop
