#include "hypergraph/contraction.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "partition/partition.h"

namespace prop {
namespace {

Hypergraph sample() {
  HypergraphBuilder b(6);
  b.add_net({0, 1});     // inside cluster 0
  b.add_net({2, 3});     // inside cluster 1
  b.add_net({1, 2});     // cluster 0 - cluster 1
  b.add_net({3, 4, 5});  // cluster 1 - cluster 2
  b.add_net({0, 5});     // cluster 0 - cluster 2
  return std::move(b).build();
}

TEST(Contraction, DropsInternalNets) {
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(sample(), clusters, 3);
  EXPECT_EQ(r.coarse.num_nodes(), 3u);
  // Nets 0 and 1 disappear; nets 2, 3, 4 survive as 2-pin cluster nets.
  EXPECT_EQ(r.coarse.num_nets(), 3u);
}

TEST(Contraction, AccumulatesNodeSizes) {
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(sample(), clusters, 3);
  for (NodeId c = 0; c < 3; ++c) EXPECT_EQ(r.coarse.node_size(c), 2);
  EXPECT_EQ(r.coarse.total_node_size(), 6);
}

TEST(Contraction, MergesParallelNetsSummingCost) {
  HypergraphBuilder b(4);
  b.add_net({0, 2});
  b.add_net({1, 3});
  b.add_net({1, 2});
  const Hypergraph g = std::move(b).build();
  // Clusters {0,1} and {2,3}: all three nets become the same coarse net.
  const ContractionResult r = contract(g, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.coarse.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(r.coarse.net_cost(0), 3.0);
}

TEST(Contraction, CoarseCutEqualsFlatCut) {
  const Hypergraph g = sample();
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(g, clusters, 3);

  // Coarse partition: clusters {0} vs {1, 2}.
  const std::vector<int> coarse_side = {0, 1, 1};
  const std::vector<int> flat_side = project_partition(r.fine_to_coarse, coarse_side);

  std::vector<std::uint8_t> coarse_u8(coarse_side.begin(), coarse_side.end());
  std::vector<std::uint8_t> flat_u8(flat_side.begin(), flat_side.end());
  const Partition coarse_part(r.coarse, coarse_u8);
  const Partition flat_part(g, flat_u8);
  EXPECT_DOUBLE_EQ(coarse_part.cut_cost(), flat_part.cut_cost());
}

TEST(Contraction, RejectsBadInput) {
  const Hypergraph g = sample();
  EXPECT_THROW(contract(g, {0, 0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(contract(g, {0, 0, 1, 1, 2, 5}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace prop
