#include "hypergraph/contraction.h"

#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/builder.h"
#include "partition/partition.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

Hypergraph sample() {
  HypergraphBuilder b(6);
  b.add_net({0, 1});     // inside cluster 0
  b.add_net({2, 3});     // inside cluster 1
  b.add_net({1, 2});     // cluster 0 - cluster 1
  b.add_net({3, 4, 5});  // cluster 1 - cluster 2
  b.add_net({0, 5});     // cluster 0 - cluster 2
  return std::move(b).build();
}

TEST(Contraction, DropsInternalNets) {
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(sample(), clusters, 3);
  EXPECT_EQ(r.coarse.num_nodes(), 3u);
  // Nets 0 and 1 disappear; nets 2, 3, 4 survive as 2-pin cluster nets.
  EXPECT_EQ(r.coarse.num_nets(), 3u);
}

TEST(Contraction, AccumulatesNodeSizes) {
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(sample(), clusters, 3);
  for (NodeId c = 0; c < 3; ++c) EXPECT_EQ(r.coarse.node_size(c), 2);
  EXPECT_EQ(r.coarse.total_node_size(), 6);
}

TEST(Contraction, MergesParallelNetsSummingCost) {
  HypergraphBuilder b(4);
  b.add_net({0, 2});
  b.add_net({1, 3});
  b.add_net({1, 2});
  const Hypergraph g = std::move(b).build();
  // Clusters {0,1} and {2,3}: all three nets become the same coarse net.
  const ContractionResult r = contract(g, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.coarse.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(r.coarse.net_cost(0), 3.0);
}

TEST(Contraction, CoarseCutEqualsFlatCut) {
  const Hypergraph g = sample();
  const std::vector<NodeId> clusters = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract(g, clusters, 3);

  // Coarse partition: clusters {0} vs {1, 2}.
  const std::vector<int> coarse_side = {0, 1, 1};
  const std::vector<int> flat_side = project_partition(r.fine_to_coarse, coarse_side);

  std::vector<std::uint8_t> coarse_u8(coarse_side.begin(), coarse_side.end());
  std::vector<std::uint8_t> flat_u8(flat_side.begin(), flat_side.end());
  const Partition coarse_part(r.coarse, coarse_u8);
  const Partition flat_part(g, flat_u8);
  EXPECT_DOUBLE_EQ(coarse_part.cut_cost(), flat_part.cut_cost());
}

TEST(Contraction, CompactsEmptyClusters) {
  // Only ids 0, 2, 4 of a 5-cluster id space have members.  The pre-fix
  // code kept the phantom ids as size-1 coarse nodes (a max(size, 1)
  // clamp), inflating the coarse total from 6 to 8 and skewing every
  // fraction-mapped balance window computed on the coarse graph.
  const std::vector<NodeId> clusters = {0, 0, 2, 2, 4, 4};
  const ContractionResult r = contract(sample(), clusters, 5);
  EXPECT_EQ(r.coarse.num_nodes(), 3u);
  EXPECT_EQ(r.coarse.total_node_size(), 6);
  // Compaction preserves cluster-id order: 0 -> 0, 2 -> 1, 4 -> 2.
  EXPECT_EQ(r.fine_to_coarse[0], 0u);
  EXPECT_EQ(r.fine_to_coarse[2], 1u);
  EXPECT_EQ(r.fine_to_coarse[4], 2u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_LT(r.fine_to_coarse[u], 3u);
}

TEST(Contraction, SingletonClustersRoundTrip) {
  const Hypergraph g = sample();
  std::vector<NodeId> identity(g.num_nodes());
  std::iota(identity.begin(), identity.end(), NodeId{0});
  const ContractionResult r =
      contract(g, identity, static_cast<NodeId>(g.num_nodes()));
  EXPECT_EQ(r.coarse.num_nodes(), g.num_nodes());
  EXPECT_EQ(r.coarse.num_nets(), g.num_nets());
  EXPECT_EQ(r.coarse.total_node_size(), g.total_node_size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(r.fine_to_coarse[u], u);
    EXPECT_EQ(r.coarse.node_size(u), g.node_size(u));
  }
}

TEST(Contraction, WeightedNetsMergePreservingCut) {
  HypergraphBuilder b(4);
  b.add_net({0, 2}, 2.5);
  b.add_net({1, 3}, 1.5);
  b.add_net({0, 1}, 4.0);  // internal to cluster 0: dropped
  const Hypergraph g = std::move(b).build();
  const ContractionResult r = contract(g, {0, 0, 1, 1}, 2);
  ASSERT_EQ(r.coarse.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(r.coarse.net_cost(0), 4.0);

  const std::vector<std::uint8_t> coarse_side = {0, 1};
  const Partition coarse_part(r.coarse, coarse_side);
  const Partition flat_part(
      g, project_partition(r.fine_to_coarse, coarse_side));
  EXPECT_DOUBLE_EQ(coarse_part.cut_cost(), 4.0);
  EXPECT_DOUBLE_EQ(flat_part.cut_cost(), 4.0);
}

TEST(Contraction, RandomClusteringPreservesCutAndTotalSize) {
  const Hypergraph g = testing::small_random_circuit(17);
  Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    // Random cluster ids over a sparse id space: some ids stay empty, so
    // every trial also exercises compaction.
    const NodeId num_clusters = static_cast<NodeId>(40 + 15 * trial);
    std::vector<NodeId> clusters(g.num_nodes());
    for (auto& c : clusters) {
      c = static_cast<NodeId>(rng.bounded(num_clusters));
    }
    const ContractionResult r = contract(g, clusters, num_clusters);
    EXPECT_EQ(r.coarse.total_node_size(), g.total_node_size());
    ASSERT_EQ(r.fine_to_coarse.size(), g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_LT(r.fine_to_coarse[u], r.coarse.num_nodes());
    }

    std::vector<std::uint8_t> coarse_side(r.coarse.num_nodes());
    for (auto& s : coarse_side) s = rng.chance(0.5) ? 1 : 0;
    const Partition coarse_part(r.coarse, coarse_side);
    const Partition flat_part(
        g, project_partition(r.fine_to_coarse, coarse_side));
    EXPECT_DOUBLE_EQ(coarse_part.cut_cost(), flat_part.cut_cost());
  }
}

TEST(Contraction, RejectsBadInput) {
  const Hypergraph g = sample();
  EXPECT_THROW(contract(g, {0, 0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(contract(g, {0, 0, 1, 1, 2, 5}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace prop
