#include "hypergraph/stats.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "hypergraph/mcnc_suite.h"

namespace prop {
namespace {

TEST(Describe, ContainsNameAndCounts) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  b.set_name("widget");
  const Hypergraph g = std::move(b).build();
  const std::string d = describe(g);
  EXPECT_NE(d.find("widget"), std::string::npos);
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("e=1"), std::string::npos);
  EXPECT_NE(d.find("m=3"), std::string::npos);
}

TEST(Describe, UnnamedGraphs) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();
  EXPECT_NE(describe(g).find("<unnamed>"), std::string::npos);
}

TEST(Stats, EmptyHypergraph) {
  HypergraphBuilder b(0);
  const Hypergraph g = std::move(b).build();
  const HypergraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_net_size, 0.0);
}

TEST(Stats, SuiteAveragesNearPaperPinCounts) {
  // Paper Sec. 3.1: "most nets in a VLSI circuit have few connections (an
  // average of about 4 over our suite of benchmark circuits)".
  const Hypergraph g = make_mcnc_circuit("p2");
  const HypergraphStats s = compute_stats(g);
  EXPECT_GT(s.avg_net_size, 2.5);
  EXPECT_LT(s.avg_net_size, 5.0);
  EXPECT_GT(s.avg_neighbors, 3.0);  // d = p(q-1)
}

}  // namespace
}  // namespace prop
