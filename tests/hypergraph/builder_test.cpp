#include "hypergraph/builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hypergraph/stats.h"

namespace prop {
namespace {

TEST(Builder, BasicConstruction) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({1, 2, 3});
  b.set_name("tiny");
  const Hypergraph g = std::move(b).build();

  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_nets(), 2u);
  EXPECT_EQ(g.num_pins(), 5u);
  EXPECT_EQ(g.name(), "tiny");
  EXPECT_EQ(g.net_size(0), 2u);
  EXPECT_EQ(g.net_size(1), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Builder, IncidenceIsConsistentBothWays) {
  HypergraphBuilder b(5);
  b.add_net({0, 1, 2});
  b.add_net({2, 3});
  b.add_net({0, 4});
  const Hypergraph g = std::move(b).build();

  for (NetId n = 0; n < g.num_nets(); ++n) {
    for (const NodeId u : g.pins_of(n)) {
      const auto nets = g.nets_of(u);
      EXPECT_NE(std::find(nets.begin(), nets.end(), n), nets.end());
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NetId n : g.nets_of(u)) {
      const auto pins = g.pins_of(n);
      EXPECT_NE(std::find(pins.begin(), pins.end(), u), pins.end());
    }
  }
}

TEST(Builder, DeduplicatesPinsWithinNet) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 0, 1, 2});
  const Hypergraph g = std::move(b).build();
  EXPECT_EQ(g.net_size(0), 3u);
  EXPECT_EQ(g.num_pins(), 3u);
}

TEST(Builder, RejectsBadPin) {
  HypergraphBuilder b(2);
  EXPECT_THROW(b.add_net({0, 2}), std::out_of_range);
}

TEST(Builder, RejectsBadCost) {
  HypergraphBuilder b(2);
  EXPECT_THROW(b.add_net({0, 1}, 0.0), std::invalid_argument);
  EXPECT_THROW(b.add_net({0, 1}, -1.0), std::invalid_argument);
}

TEST(Builder, NodeSizes) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  b.set_node_size(1, 5);
  EXPECT_THROW(b.set_node_size(0, 0), std::invalid_argument);
  EXPECT_THROW(b.set_node_size(9, 1), std::out_of_range);
  const Hypergraph g = std::move(b).build();
  EXPECT_EQ(g.node_size(1), 5);
  EXPECT_EQ(g.total_node_size(), 7);
  EXPECT_FALSE(g.unit_node_sizes());
}

TEST(Builder, UnitFlagsDetected) {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  b.add_net({1, 2}, 2.0);
  const Hypergraph g = std::move(b).build();
  EXPECT_FALSE(g.unit_net_costs());
  EXPECT_TRUE(g.unit_node_sizes());
  EXPECT_DOUBLE_EQ(g.net_cost(1), 2.0);
}

TEST(Builder, MaxDegreeAndNetSize) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  b.add_net({0, 1});
  b.add_net({0, 2});
  const Hypergraph g = std::move(b).build();
  EXPECT_EQ(g.max_degree(), 3u);  // node 0
  EXPECT_EQ(g.max_net_size(), 4u);
}

TEST(Stats, MatchesPaperDefinitions) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({0, 1, 2, 3});
  const Hypergraph g = std::move(b).build();
  const HypergraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_pins, 6u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 6.0 / 4.0);      // p
  EXPECT_DOUBLE_EQ(s.avg_net_size, 3.0);          // q
  EXPECT_DOUBLE_EQ(s.avg_neighbors, 1.5 * 2.0);   // d = p(q-1)
  EXPECT_EQ(s.single_pin_nets, 0u);
}

TEST(Stats, CountsSinglePinNets) {
  HypergraphBuilder b(2);
  b.add_net({0});
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();
  EXPECT_EQ(compute_stats(g).single_pin_nets, 1u);
}

}  // namespace
}  // namespace prop
