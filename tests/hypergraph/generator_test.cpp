#include "hypergraph/generator.h"

#include <gtest/gtest.h>

#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"

namespace prop {
namespace {

TEST(Generator, ExactCounts) {
  const CircuitSpec spec{"g", 500, 600, 2000};
  const Hypergraph g = generate_circuit(spec, 1);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_nets(), 600u);
  EXPECT_EQ(g.num_pins(), 2000u);
}

TEST(Generator, Deterministic) {
  const CircuitSpec spec{"g", 300, 350, 1200};
  const Hypergraph a = generate_circuit(spec, 42);
  const Hypergraph b = generate_circuit(spec, 42);
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (NetId n = 0; n < a.num_nets(); ++n) {
    const auto pa = a.pins_of(n);
    const auto pb = b.pins_of(n);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Generator, SeedsDiffer) {
  const CircuitSpec spec{"g", 300, 350, 1200};
  const Hypergraph a = generate_circuit(spec, 1);
  const Hypergraph b = generate_circuit(spec, 2);
  bool any_diff = false;
  for (NetId n = 0; n < a.num_nets() && !any_diff; ++n) {
    const auto pa = a.pins_of(n);
    const auto pb = b.pins_of(n);
    if (pa.size() != pb.size()) {
      any_diff = true;
      break;
    }
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (pa[i] != pb[i]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, NoIsolatedNodesAndMinNetSize) {
  const Hypergraph g = generate_circuit({"g", 400, 500, 1700}, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.degree(u), 1u) << "node " << u;
  }
  for (NetId n = 0; n < g.num_nets(); ++n) {
    EXPECT_GE(g.net_size(n), 2u) << "net " << n;
  }
}

TEST(Generator, RejectsInfeasibleSpecs) {
  EXPECT_THROW(generate_circuit({"g", 1, 1, 2}, 0), std::invalid_argument);
  EXPECT_THROW(generate_circuit({"g", 10, 0, 0}, 0), std::invalid_argument);
  EXPECT_THROW(generate_circuit({"g", 10, 5, 9}, 0), std::invalid_argument);
}

TEST(McncSuite, HasAllSixteenTable1Circuits) {
  EXPECT_EQ(mcnc_specs().size(), 16u);
  const CircuitSpec& balu = mcnc_spec("balu");
  EXPECT_EQ(balu.num_nodes, 801u);
  EXPECT_EQ(balu.num_nets, 735u);
  EXPECT_EQ(balu.num_pins, 2697u);
  const CircuitSpec& ind2 = mcnc_spec("industry2");
  EXPECT_EQ(ind2.num_nodes, 12637u);
  EXPECT_EQ(ind2.num_pins, 48404u);
  EXPECT_THROW(mcnc_spec("nonexistent"), std::out_of_range);
}

TEST(McncSuite, GeneratedCircuitMatchesSpec) {
  const Hypergraph g = make_mcnc_circuit("struct");
  EXPECT_EQ(g.num_nodes(), 1952u);
  EXPECT_EQ(g.num_nets(), 1920u);
  EXPECT_EQ(g.num_pins(), 5471u);
  EXPECT_EQ(g.name(), "struct");
}

TEST(McncSuite, AverageNetSizeNearPaper) {
  // The paper observes an average of about 4 pins per net over the suite;
  // our generator should land in the 2.5 - 5 band for every circuit.
  for (const auto& spec : mcnc_specs()) {
    const double q = static_cast<double>(spec.num_pins) /
                     static_cast<double>(spec.num_nets);
    EXPECT_GT(q, 2.0) << spec.name;
    EXPECT_LT(q, 5.0) << spec.name;
  }
}

TEST(Generator, DifferentNamesGiveDifferentSuiteCircuits) {
  const Hypergraph t3 = make_mcnc_circuit("t3");
  const Hypergraph t4 = make_mcnc_circuit("t4");
  EXPECT_NE(t3.num_pins(), t4.num_pins());
}

}  // namespace
}  // namespace prop
