#include "hypergraph/hgr_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "hypergraph/builder.h"
#include "hypergraph/generator.h"

namespace prop {
namespace {

TEST(HgrIo, ReadsPlainFormat) {
  std::istringstream in("% comment\n2 4\n1 2\n2 3 4\n");
  const Hypergraph g = read_hgr(in, "x");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_nets(), 2u);
  EXPECT_EQ(g.net_size(1), 3u);
  EXPECT_TRUE(g.unit_net_costs());
}

TEST(HgrIo, ReadsWeightedNets) {
  std::istringstream in("2 3 1\n2.5 1 2\n1 2 3\n");
  const Hypergraph g = read_hgr(in);
  EXPECT_DOUBLE_EQ(g.net_cost(0), 2.5);
  EXPECT_DOUBLE_EQ(g.net_cost(1), 1.0);
}

TEST(HgrIo, ReadsWeightedNodes) {
  std::istringstream in("1 3 10\n1 2 3\n4\n5\n6\n");
  const Hypergraph g = read_hgr(in);
  EXPECT_EQ(g.node_size(0), 4);
  EXPECT_EQ(g.node_size(2), 6);
}

TEST(HgrIo, RejectsMalformed) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_hgr(in), std::runtime_error);
  }
  {
    std::istringstream in("2 3\n1 2\n");  // truncated
    EXPECT_THROW(read_hgr(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2\n1 5\n");  // pin out of range
    EXPECT_THROW(read_hgr(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2 7\n1 2\n");  // bad fmt
    EXPECT_THROW(read_hgr(in), std::runtime_error);
  }
}

TEST(HgrIo, RoundTripPlain) {
  HypergraphBuilder b(5);
  b.add_net({0, 1, 2});
  b.add_net({3, 4});
  b.add_net({0, 4});
  const Hypergraph g = std::move(b).build();

  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);

  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_nets(), g.num_nets());
  ASSERT_EQ(h.num_pins(), g.num_pins());
  for (NetId n = 0; n < g.num_nets(); ++n) {
    ASSERT_EQ(h.net_size(n), g.net_size(n));
  }
}

TEST(HgrIo, RoundTripWeighted) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 2.0);
  b.add_net({1, 2});
  b.set_node_size(2, 7);
  const Hypergraph g = std::move(b).build();

  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);
  EXPECT_DOUBLE_EQ(h.net_cost(0), 2.0);
  EXPECT_EQ(h.node_size(2), 7);
}

TEST(HgrIo, RoundTripGeneratedCircuit) {
  const Hypergraph g = generate_circuit({"rt", 120, 150, 470}, 9);
  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_nets(), g.num_nets());
  EXPECT_EQ(h.num_pins(), g.num_pins());
}

}  // namespace
}  // namespace prop
