#include "hypergraph/hgr_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "hypergraph/builder.h"
#include "hypergraph/generator.h"

namespace prop {
namespace {

TEST(HgrIo, ReadsPlainFormat) {
  std::istringstream in("% comment\n2 4\n1 2\n2 3 4\n");
  const Hypergraph g = read_hgr(in, "x");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_nets(), 2u);
  EXPECT_EQ(g.net_size(1), 3u);
  EXPECT_TRUE(g.unit_net_costs());
}

TEST(HgrIo, ReadsWeightedNets) {
  std::istringstream in("2 3 1\n2.5 1 2\n1 2 3\n");
  const Hypergraph g = read_hgr(in);
  EXPECT_DOUBLE_EQ(g.net_cost(0), 2.5);
  EXPECT_DOUBLE_EQ(g.net_cost(1), 1.0);
}

TEST(HgrIo, ReadsWeightedNodes) {
  std::istringstream in("1 3 10\n1 2 3\n4\n5\n6\n");
  const Hypergraph g = read_hgr(in);
  EXPECT_EQ(g.node_size(0), 4);
  EXPECT_EQ(g.node_size(2), 6);
}

/// Every rejection must be a std::runtime_error whose message carries the
/// uniform "hgr:" prefix, so CLI users see which input file is at fault
/// rather than a raw stoll/terminate diagnostic.
void expect_hgr_error(const std::string& text, const std::string& label) {
  std::istringstream in(text);
  try {
    read_hgr(in);
    FAIL() << label << ": expected read_hgr to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("hgr:", 0), 0u)
        << label << ": message lacks 'hgr:' prefix: " << e.what();
  } catch (...) {
    FAIL() << label << ": wrong exception type (not std::runtime_error)";
  }
}

TEST(HgrIo, RejectsMalformedCorpus) {
  expect_hgr_error("", "empty input");
  expect_hgr_error("% only a comment\n", "comment-only input");
  expect_hgr_error("nets nodes\n", "non-numeric header");
  expect_hgr_error("-1 4\n", "negative net count");
  expect_hgr_error("2 -4\n", "negative node count");
  expect_hgr_error("2 4 1 extra\n1 2\n3 4\n", "header trailing junk");
  expect_hgr_error("2 4 x\n1 2\n3 4\n", "non-numeric fmt");
  expect_hgr_error("1 2 7\n1 2\n", "unknown fmt code");
  expect_hgr_error("2 3\n1 2\n", "truncated net list");
  expect_hgr_error("1 3 1\nbad 1 2\n", "non-numeric net weight");
  expect_hgr_error("1 3 1\n-2 1 2\n", "negative net weight");
  expect_hgr_error("1 3 1\n0 1 2\n", "zero net weight");
  expect_hgr_error("1 2\n1 5\n", "pin out of range (high)");
  expect_hgr_error("1 2\n0 1\n", "pin out of range (zero)");
  expect_hgr_error("1 2\n-3 1\n", "negative pin id");
  expect_hgr_error("1 3\n1 2 oops\n", "junk token in net line");
  expect_hgr_error("1 3 1\n2.5\n", "net with weight but no pins");
}

TEST(HgrIo, RejectsMalformedNodeWeights) {
  expect_hgr_error("1 3 10\n1 2 3\n4\n5\n", "truncated node weights");
  expect_hgr_error("1 3 10\n1 2 3\nfour\n5\n6\n", "non-numeric node weight");
  expect_hgr_error("1 3 10\n1 2 3\n4\n99999999999999999999999\n6\n",
                   "overflowing node weight");
  expect_hgr_error("1 3 10\n1 2 3\n4\n0\n6\n", "zero node weight");
  expect_hgr_error("1 3 10\n1 2 3\n4\n-5\n6\n", "negative node weight");
  expect_hgr_error("1 3 10\n1 2 3\n4\n5 junk\n6\n", "junk after node weight");
}

TEST(HgrIo, RoundTripPlain) {
  HypergraphBuilder b(5);
  b.add_net({0, 1, 2});
  b.add_net({3, 4});
  b.add_net({0, 4});
  const Hypergraph g = std::move(b).build();

  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);

  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_nets(), g.num_nets());
  ASSERT_EQ(h.num_pins(), g.num_pins());
  for (NetId n = 0; n < g.num_nets(); ++n) {
    ASSERT_EQ(h.net_size(n), g.net_size(n));
  }
}

TEST(HgrIo, RoundTripWeighted) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 2.0);
  b.add_net({1, 2});
  b.set_node_size(2, 7);
  const Hypergraph g = std::move(b).build();

  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);
  EXPECT_DOUBLE_EQ(h.net_cost(0), 2.0);
  EXPECT_EQ(h.node_size(2), 7);
}

TEST(HgrIo, WriterReportsStreamFailure) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();

  std::ostringstream out;
  out.setstate(std::ios::failbit);
  try {
    write_hgr(g, out);
    FAIL() << "expected write_hgr to throw on a failed stream";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("hgr:", 0), 0u) << e.what();
  }
}

/// The untrusted-payload caps (service ingest).  Each limit must reject via
/// the uniform "hgr:" runtime_error *before* the corresponding allocation.
void expect_limit_error(const std::string& text, const HgrLimits& limits,
                        const std::string& needle, const std::string& label) {
  std::istringstream in(text);
  try {
    read_hgr(in, "", limits);
    FAIL() << label << ": expected read_hgr to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("hgr:", 0), 0u) << label << ": " << what;
    EXPECT_NE(what.find(needle), std::string::npos)
        << label << ": message '" << what << "' lacks '" << needle << "'";
  }
}

TEST(HgrIoLimits, EnforcesNodeAndNetCaps) {
  HgrLimits limits;
  limits.max_nodes = 3;
  expect_limit_error("1 4\n1 2\n", limits, "node", "node cap");
  limits = {};
  limits.max_nets = 1;
  expect_limit_error("2 4\n1 2\n3 4\n", limits, "net", "net cap");
}

TEST(HgrIoLimits, HeaderCapsRejectBeforeAllocation) {
  // A hostile header claiming 10^18 nodes must fail on the cap check, not
  // inside a 10^18-element reserve.  (With no limits, the 31-bit id-range
  // cap still rejects it.)
  HgrLimits limits;
  limits.max_nodes = 1000;
  expect_limit_error("1 1000000000000000000\n1 2\n", limits, "node",
                     "huge node count vs cap");
  expect_limit_error("1 1000000000000000000\n1 2\n", HgrLimits{}, "31-bit",
                     "huge node count vs id range");
  expect_limit_error("1000000000000000000 4\n1 2\n", HgrLimits{}, "31-bit",
                     "huge net count vs id range");
}

TEST(HgrIoLimits, EnforcesPinCapMidStream) {
  HgrLimits limits;
  limits.max_pins = 3;
  expect_limit_error("2 4\n1 2\n2 3 4\n", limits, "pin", "pin cap");
  limits.max_pins = 5;  // exactly at the limit is fine
  std::istringstream ok("2 4\n1 2\n2 3 4\n");
  EXPECT_EQ(read_hgr(ok, "", limits).num_pins(), 5u);
}

TEST(HgrIoLimits, EnforcesByteCapIncludingComments) {
  HgrLimits limits;
  limits.max_bytes = 16;
  expect_limit_error("% padding padding padding\n2 4\n1 2\n2 3 4\n", limits,
                     "byte", "comment bytes count");
  limits.max_bytes = 4096;
  std::istringstream ok("2 4\n1 2\n2 3 4\n");
  EXPECT_EQ(read_hgr(ok, "", limits).num_nodes(), 4u);
}

TEST(HgrIoLimits, ZeroMeansUnlimited) {
  std::istringstream in("2 4\n1 2\n2 3 4\n");
  const Hypergraph g = read_hgr(in, "x", HgrLimits{});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_nets(), 2u);
}

TEST(HgrIo, RoundTripGeneratedCircuit) {
  const Hypergraph g = generate_circuit({"rt", 120, 150, 470}, 9);
  std::ostringstream out;
  write_hgr(g, out);
  std::istringstream in(out.str());
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_nets(), g.num_nets());
  EXPECT_EQ(h.num_pins(), g.num_pins());
}

}  // namespace
}  // namespace prop
