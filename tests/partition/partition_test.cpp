#include "partition/partition.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

Hypergraph triangle() {
  HypergraphBuilder b(3);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({0, 2});
  return std::move(b).build();
}

TEST(Partition, AllZeroHasNoCut) {
  const Hypergraph g = triangle();
  Partition p(g);
  EXPECT_DOUBLE_EQ(p.cut_cost(), 0.0);
  EXPECT_EQ(p.cut_nets(), 0u);
  EXPECT_EQ(p.side_size(0), 3);
  EXPECT_EQ(p.side_size(1), 0);
}

TEST(Partition, ExplicitAssignment) {
  const Hypergraph g = triangle();
  const std::vector<std::uint8_t> sides = {0, 1, 0};
  Partition p(g, sides);
  EXPECT_DOUBLE_EQ(p.cut_cost(), 2.0);  // nets {0,1} and {1,2}
  EXPECT_EQ(p.pins_on_side(0, 0), 1u);
  EXPECT_EQ(p.pins_on_side(0, 1), 1u);
  EXPECT_TRUE(p.is_cut(0));
  EXPECT_FALSE(p.is_cut(2));
}

TEST(Partition, MoveUpdatesEverything) {
  const Hypergraph g = triangle();
  const std::vector<std::uint8_t> sides = {0, 1, 0};
  Partition p(g, sides);
  p.move(1);  // now all on side 0
  EXPECT_DOUBLE_EQ(p.cut_cost(), 0.0);
  EXPECT_EQ(p.side(1), 0);
  EXPECT_EQ(p.side_size(0), 3);
  p.move(2);
  EXPECT_DOUBLE_EQ(p.cut_cost(), 2.0);
}

TEST(Partition, ImmediateGainMatchesDefinition) {
  // Node 1 in {0:{0,2}, 1:{1}}: nets {0,1} and {1,2} both have node 1 as
  // the only side-1 pin -> gain +2; no internal nets on side 1.
  const Hypergraph g = triangle();
  const std::vector<std::uint8_t> sides = {0, 1, 0};
  const Partition p(g, sides);
  EXPECT_DOUBLE_EQ(p.immediate_gain(1), 2.0);
  // Node 0: net {0,2} internal (-1), net {0,1} cut with node 0 sole on its
  // side (+1) -> 0.
  EXPECT_DOUBLE_EQ(p.immediate_gain(0), 0.0);
}

TEST(Partition, GainEqualsCutDeltaProperty) {
  const Hypergraph g = testing::small_random_circuit();
  Rng rng(99);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition p(g, sides);

  for (int trial = 0; trial < 500; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    const double before = p.cut_cost();
    const double gain = p.immediate_gain(u);
    p.move(u);
    EXPECT_NEAR(p.cut_cost(), before - gain, 1e-9);
  }
}

TEST(Partition, IncrementalCutMatchesRecompute) {
  const Hypergraph g = testing::small_random_circuit(13);
  Rng rng(13);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition p(g, sides);
  for (int trial = 0; trial < 300; ++trial) {
    p.move(static_cast<NodeId>(rng.bounded(g.num_nodes())));
  }
  EXPECT_NEAR(p.cut_cost(), p.recompute_cut_cost(), 1e-9);
}

TEST(Partition, MoveIsInvolution) {
  const Hypergraph g = testing::small_random_circuit(21);
  std::vector<std::uint8_t> sides(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) sides[u] = 1;
  Partition p(g, sides);
  const double cut = p.cut_cost();
  p.move(5);
  p.move(5);
  EXPECT_DOUBLE_EQ(p.cut_cost(), cut);
  EXPECT_EQ(p.side(5), sides[5]);
}

TEST(Partition, WeightedNetCosts) {
  HypergraphBuilder b(2);
  b.add_net({0, 1}, 3.5);
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 1};
  const Partition p(g, sides);
  EXPECT_DOUBLE_EQ(p.cut_cost(), 3.5);
  EXPECT_EQ(p.cut_nets(), 1u);
  EXPECT_DOUBLE_EQ(p.immediate_gain(0), 3.5);
}

TEST(Partition, RejectsBadSides) {
  const Hypergraph g = triangle();
  const std::vector<std::uint8_t> wrong_len = {0, 1};
  EXPECT_THROW(Partition(g, wrong_len), std::invalid_argument);
  const std::vector<std::uint8_t> bad_value = {0, 1, 2};
  EXPECT_THROW(Partition(g, bad_value), std::invalid_argument);
}

}  // namespace
}  // namespace prop
