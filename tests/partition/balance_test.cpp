#include "partition/balance.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"

namespace prop {
namespace {

Hypergraph unit_nodes(NodeId n) {
  HypergraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_net({u, u + 1});
  return std::move(b).build();
}

TEST(Balance, FiftyFiftyWidensByMaxNodeSize) {
  const Hypergraph g = unit_nodes(100);
  const BalanceConstraint c = BalanceConstraint::fifty_fifty(g);
  EXPECT_EQ(c.lo(), 49);
  EXPECT_EQ(c.hi(), 51);
  EXPECT_TRUE(c.feasible(50));
  EXPECT_TRUE(c.feasible(49));
  EXPECT_FALSE(c.feasible(48));
}

TEST(Balance, FortyFiveFiftyFiveWindow) {
  const Hypergraph g = unit_nodes(100);
  const BalanceConstraint c = BalanceConstraint::forty_five(g);
  EXPECT_EQ(c.lo(), 45);
  EXPECT_EQ(c.hi(), 55);
  EXPECT_TRUE(c.feasible(45));
  EXPECT_TRUE(c.feasible(55));
  EXPECT_FALSE(c.feasible(44));
  EXPECT_FALSE(c.feasible(56));
}

TEST(Balance, MoveFeasibility) {
  const Hypergraph g = unit_nodes(100);
  const BalanceConstraint c = BalanceConstraint::forty_five(g);
  // side0 = 45: moving a unit node off side 0 leaves 44 -> infeasible.
  EXPECT_FALSE(c.move_feasible(45, 0, 1));
  EXPECT_TRUE(c.move_feasible(45, 1, 1));
  EXPECT_TRUE(c.move_feasible(50, 0, 1));
  EXPECT_FALSE(c.move_feasible(55, 1, 1));
}

TEST(Balance, OddNodeCount) {
  const Hypergraph g = unit_nodes(7);
  const BalanceConstraint c = BalanceConstraint::fifty_fifty(g);
  EXPECT_TRUE(c.feasible(3));
  EXPECT_TRUE(c.feasible(4));
}

TEST(Balance, WeightedNodesWidenWindow) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.set_node_size(0, 10);
  const Hypergraph g = std::move(b).build();  // total 13
  const BalanceConstraint c = BalanceConstraint::fifty_fifty(g);
  EXPECT_GE(c.hi() - c.lo(), 10);
}

TEST(Balance, RejectsBadFractions) {
  const Hypergraph g = unit_nodes(10);
  EXPECT_THROW(BalanceConstraint::fraction(g, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BalanceConstraint::fraction(g, 0.6, 0.4), std::invalid_argument);
  EXPECT_THROW(BalanceConstraint::fraction(g, 0.5, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace prop
