#include "partition/initial.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Initial, ProducesBalancedSplit) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sides = random_balanced_sides(g, balance, rng);
    std::int64_t size0 = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (sides[u] == 0) size0 += g.node_size(u);
    }
    EXPECT_TRUE(balance.feasible(size0)) << "size0=" << size0;
  }
}

TEST(Initial, DifferentSeedsDifferentSplits) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng r1(1);
  Rng r2(2);
  const auto a = random_balanced_sides(g, balance, r1);
  const auto b = random_balanced_sides(g, balance, r2);
  EXPECT_NE(a, b);
}

TEST(Initial, WeightedNodesRespectWindow) {
  HypergraphBuilder b(10);
  for (NodeId u = 0; u + 1 < 10; ++u) b.add_net({u, u + 1});
  for (NodeId u = 0; u < 10; ++u) b.set_node_size(u, 1 + (u % 4));
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fraction(g, 0.4, 0.6);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sides = random_balanced_sides(g, balance, rng);
    std::int64_t size0 = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (sides[u] == 0) size0 += g.node_size(u);
    }
    EXPECT_TRUE(balance.feasible(size0)) << "size0=" << size0;
  }
}

TEST(RepairBalance, FixesLopsidedPartition) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Partition part(g);  // everything on side 0
  repair_balance(part, balance);
  EXPECT_TRUE(balance.feasible(part.side_size(0)));
  EXPECT_NEAR(part.cut_cost(), part.recompute_cut_cost(), 1e-9);
}

TEST(RepairBalance, NoOpWhenAlreadyFeasible) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(4);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const double cut = part.cut_cost();
  repair_balance(part, balance);
  EXPECT_DOUBLE_EQ(part.cut_cost(), cut);
}

}  // namespace
}  // namespace prop
