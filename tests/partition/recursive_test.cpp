#include "partition/recursive.h"

#include <gtest/gtest.h>

#include "fm/fm_partitioner.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(InduceSubgraph, KeepsInternalStructure) {
  const Hypergraph g = testing::chain_of_blocks(4, 5);  // 20 nodes
  std::vector<NodeId> first_half;
  for (NodeId u = 0; u < 10; ++u) first_half.push_back(u);
  const Hypergraph sub = induce_subgraph(g, first_half);
  EXPECT_EQ(sub.num_nodes(), 10u);
  // Each 5-block contributes 5 ring nets + 1 spanning net; one bridge net
  // connects the two blocks inside the subset.
  EXPECT_EQ(sub.num_nets(), 13u);
  for (NetId n = 0; n < sub.num_nets(); ++n) EXPECT_GE(sub.net_size(n), 2u);
}

TEST(InduceSubgraph, DropsDanglingNets) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  // Take a single node: every net loses its other pins.
  const Hypergraph sub = induce_subgraph(g, {0});
  EXPECT_EQ(sub.num_nodes(), 1u);
  EXPECT_EQ(sub.num_nets(), 0u);
}

TEST(KWayCost, CountsSpanningNetsOnce) {
  const Hypergraph g = testing::chain_of_blocks(3, 4);  // 12 nodes
  std::vector<NodeId> part(12, 0);
  for (NodeId u = 4; u < 8; ++u) part[u] = 1;
  for (NodeId u = 8; u < 12; ++u) part[u] = 2;
  // Exactly the two bridge nets span parts.
  EXPECT_DOUBLE_EQ(kway_cut_cost(g, part), 2.0);
}

TEST(RecursiveBisection, KEqualsOneIsTrivial) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  FmPartitioner fm;
  const KWayResult r = recursive_bisection(fm, g, 1, 7);
  EXPECT_DOUBLE_EQ(r.cut_cost, 0.0);
  for (const NodeId p : r.part) EXPECT_EQ(p, 0u);
}

TEST(RecursiveBisection, FourWayBalancedParts) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);  // 64 nodes
  FmPartitioner fm;
  const KWayResult r = recursive_bisection(fm, g, 4, 11);
  EXPECT_EQ(r.k, 4u);
  std::vector<int> count(4, 0);
  for (const NodeId p : r.part) {
    ASSERT_LT(p, 4u);
    ++count[p];
  }
  for (int c : count) {
    EXPECT_GE(c, 10);
    EXPECT_LE(c, 22);
  }
  EXPECT_DOUBLE_EQ(r.cut_cost, kway_cut_cost(g, r.part));
}

TEST(RecursiveBisection, ThreeWayUnevenTargets) {
  const Hypergraph g = testing::chain_of_blocks(6, 6);  // 36 nodes
  FmPartitioner fm;
  const KWayResult r = recursive_bisection(fm, g, 3, 5);
  std::vector<int> count(3, 0);
  for (const NodeId p : r.part) ++count[p];
  for (int c : count) EXPECT_GT(c, 0);
}

TEST(RecursiveBisection, DeterministicInSeed) {
  const Hypergraph g = testing::chain_of_blocks(4, 8);
  FmPartitioner fm;
  const KWayResult a = recursive_bisection(fm, g, 4, 123);
  const KWayResult b = recursive_bisection(fm, g, 4, 123);
  EXPECT_EQ(a.part, b.part);
}

TEST(RecursiveBisection, RejectsBadK) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  FmPartitioner fm;
  EXPECT_THROW(recursive_bisection(fm, g, 0, 1), std::invalid_argument);
  EXPECT_THROW(recursive_bisection(fm, g, 100, 1), std::invalid_argument);
}

}  // namespace
}  // namespace prop
