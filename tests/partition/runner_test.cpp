// Multi-start runner unit tests: the pinned per-run seed derivation, the
// wall/CPU timing split and its deprecated aliases, and the stats-JSON
// serialization (round-trip double precision, timing exclusion).
#include "partition/runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "fm/fm_partitioner.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

// Extracts the literal token following `"key":` in a serialized JSON object.
std::string json_value(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return {};
  auto end = pos + needle.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  return json.substr(pos + needle.size(), end - pos - needle.size());
}

// The per-run seed schedule is part of the determinism contract: the i-th
// run's seed is mix_seed(base, i) on every path and thread count.  These
// literals pin the SplitMix64 derivation itself — a change to the mixer
// would silently invalidate every recorded experiment.
TEST(RunnerSeeds, SplitMixDerivationIsPinned) {
  EXPECT_EQ(mix_seed(1, 0), 0x5e41ab087439611eULL);
  EXPECT_EQ(mix_seed(1, 1), 0xe9fd6049d65af21eULL);
  EXPECT_EQ(mix_seed(1, 2), 0xbcd9dbb49673066bULL);
  EXPECT_EQ(mix_seed(1, 3), 0x86d6fd953217ae03ULL);
  EXPECT_EQ(mix_seed(0xDEADBEEF, 0), 0x1ed543473e16964cULL);
  EXPECT_EQ(mix_seed(0xDEADBEEF, 1), 0x1b7ffc89650b38b7ULL);
}

TEST(RunnerSeeds, RecordsCarryTheMixedSeedSequence) {
  const Hypergraph g = testing::chain_of_blocks(4, 8);
  FmPartitioner fm;
  const MultiRunResult r =
      run_many(fm, g, BalanceConstraint::fifty_fifty(g), 4, 1);
  ASSERT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.records[0].seed, 0x5e41ab087439611eULL);
  EXPECT_EQ(r.records[1].seed, 0xe9fd6049d65af21eULL);
  EXPECT_EQ(r.records[2].seed, 0xbcd9dbb49673066bULL);
  EXPECT_EQ(r.records[3].seed, 0x86d6fd953217ae03ULL);
  // best_seed is one of the run seeds, and it reproduces best_cut solo.
  FmPartitioner again;
  const RunOutcome solo =
      run_checked(again, g, BalanceConstraint::fifty_fifty(g), r.best_seed);
  ASSERT_TRUE(solo.has_result());
  EXPECT_EQ(solo.result.cut_cost, r.best_cut());
}

TEST(RunnerTiming, WallAndCpuFieldsAreSplitAndAliased) {
  const Hypergraph g = testing::chain_of_blocks(4, 8);
  FmPartitioner fm;
  const MultiRunResult r =
      run_many(fm, g, BalanceConstraint::fifty_fifty(g), 3, 1);
  EXPECT_GT(r.total_wall_seconds, 0.0);
  EXPECT_GE(r.total_cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.wall_seconds_per_run, r.total_wall_seconds / 3);
  EXPECT_DOUBLE_EQ(r.cpu_seconds_per_run, r.total_cpu_seconds / 3);
  // The deprecated names alias the CPU fields (Table 4's paper metric).
  EXPECT_DOUBLE_EQ(r.total_seconds, r.total_cpu_seconds);
  EXPECT_DOUBLE_EQ(r.seconds_per_run, r.cpu_seconds_per_run);
  double cpu_sum = 0.0;
  for (const RunRecord& rec : r.records) {
    EXPECT_GE(rec.wall_seconds, 0.0);
    EXPECT_GE(rec.cpu_seconds, 0.0);
    EXPECT_DOUBLE_EQ(rec.seconds, rec.cpu_seconds);
    cpu_sum += rec.cpu_seconds;
  }
  EXPECT_DOUBLE_EQ(r.total_cpu_seconds, cpu_sum);
}

TEST(RunnerStatsJson, DoublesRoundTripAtFullPrecision) {
  // 0.1 + 0.2 and 1/3 are classic prints that truncate at the stream
  // default of 6 significant digits; every double must survive a
  // serialize -> strtod round trip bit-for-bit.
  MultiRunResult r;
  r.best.side = {0, 1};
  r.best.cut_cost = 0.1 + 0.2;
  r.best_seed = 42;
  r.runs_requested = 1;
  RunRecord rec;
  rec.seed = 42;
  rec.cut = 1.0 / 3.0;
  rec.wall_seconds = 0.123456789012345678;
  rec.cpu_seconds = 1e-9 + 1e-18;
  rec.seconds = rec.cpu_seconds;
  r.records.push_back(rec);

  std::ostringstream out;
  write_stats_json(out, "c", "a", r);
  const std::string json = out.str();

  EXPECT_EQ(std::strtod(json_value(json, "best_cut").c_str(), nullptr),
            0.1 + 0.2);
  EXPECT_EQ(std::strtod(json_value(json, "cut").c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(std::strtod(json_value(json, "wall_seconds").c_str(), nullptr),
            rec.wall_seconds);
  EXPECT_EQ(std::strtod(json_value(json, "cpu_seconds").c_str(), nullptr),
            rec.cpu_seconds);
}

TEST(RunnerStatsJson, TimingKeysAreGatedByOptions) {
  const Hypergraph g = testing::chain_of_blocks(3, 6);
  FmPartitioner fm;
  RunnerOptions options;
  options.collect_telemetry = true;
  const MultiRunResult r =
      run_many(fm, g, BalanceConstraint::fifty_fifty(g), 2, 9, options);

  std::ostringstream with_timing;
  write_stats_json(with_timing, "c", "fm", r);
  const std::string timed = with_timing.str();
  for (const char* key :
       {"total_wall_seconds", "total_cpu_seconds", "wall_seconds_per_run",
        "cpu_seconds_per_run", "total_seconds", "seconds_per_run",
        "wall_seconds", "cpu_seconds"}) {
    EXPECT_NE(timed.find("\"" + std::string(key) + "\":"), std::string::npos)
        << key;
  }

  std::ostringstream without;
  StatsJsonOptions json_options;
  json_options.include_timing = false;
  write_stats_json(without, "c", "fm", r, json_options);
  const std::string bare = without.str();
  for (const char* key : {"seconds", "wall_seconds", "cpu_seconds"}) {
    EXPECT_EQ(bare.find("\"" + std::string(key) + "\""), std::string::npos)
        << key;
  }
  // Everything that is not timing survives.
  EXPECT_NE(bare.find("\"best_cut\":"), std::string::npos);
  EXPECT_NE(bare.find("\"best_seed\":"), std::string::npos);
  EXPECT_NE(bare.find("\"run_records\":["), std::string::npos);
  EXPECT_NE(bare.find("\"runs\":["), std::string::npos);
}

TEST(Runner, RejectsNegativeThreadCount) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  FmPartitioner fm;
  RunnerOptions options;
  options.threads = -1;
  EXPECT_THROW(
      run_many(fm, g, BalanceConstraint::fifty_fifty(g), 1, 1, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace prop
