#include "partition/metrics.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "testutil.h"

namespace prop {
namespace {

Hypergraph square() {
  // 4-cycle: nets {0,1},{1,2},{2,3},{3,0}.
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  b.add_net({3, 0});
  return std::move(b).build();
}

TEST(Metrics, BalancedSquareSplit) {
  const Hypergraph g = square();
  const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
  const Partition part(g, sides);
  const PartitionMetrics m = compute_metrics(part);
  EXPECT_DOUBLE_EQ(m.cut_cost, 2.0);
  EXPECT_EQ(m.cut_nets, 2u);
  EXPECT_EQ(m.size0, 2);
  EXPECT_EQ(m.size1, 2);
  EXPECT_DOUBLE_EQ(m.balance_ratio, 0.5);
  EXPECT_DOUBLE_EQ(m.ratio_cut, 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.scaled_cost, 2.0 / (4.0 * 4.0));
  // Two uncut 2-pin nets contribute 1 each; cut nets contribute 0.
  EXPECT_DOUBLE_EQ(m.absorption, 2.0);
}

TEST(Metrics, LopsidedSplit) {
  const Hypergraph g = square();
  const std::vector<std::uint8_t> sides = {0, 1, 1, 1};
  const Partition part(g, sides);
  const PartitionMetrics m = compute_metrics(part);
  EXPECT_DOUBLE_EQ(m.cut_cost, 2.0);
  EXPECT_DOUBLE_EQ(m.balance_ratio, 0.25);
  EXPECT_DOUBLE_EQ(m.ratio_cut, 2.0 / 3.0);
}

TEST(Metrics, RatioCutPrefersBalancedEqualCuts) {
  const Hypergraph g = square();
  const std::vector<std::uint8_t> balanced = {0, 0, 1, 1};
  const std::vector<std::uint8_t> lopsided = {0, 1, 1, 1};
  EXPECT_LT(ratio_cut(g, balanced), ratio_cut(g, lopsided));
}

TEST(Metrics, AbsorptionOfLargeNet) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 0, 0, 1};
  const Partition part(g, sides);
  // Side 0 holds 3 of 4 pins -> (3-1)/3; side 1 holds 1 -> 0.
  EXPECT_DOUBLE_EQ(compute_metrics(part).absorption, 2.0 / 3.0);
}

TEST(Metrics, AgreesWithPartitionState) {
  const Hypergraph g = testing::small_random_circuit(161);
  std::vector<std::uint8_t> sides(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) sides[u] = 1;
  const Partition part(g, sides);
  const PartitionMetrics m = compute_metrics(part);
  EXPECT_DOUBLE_EQ(m.cut_cost, part.cut_cost());
  EXPECT_EQ(m.cut_nets, part.cut_nets());
  EXPECT_EQ(m.size0 + m.size1, g.total_node_size());
}

}  // namespace
}  // namespace prop
