#include "partition/validate.h"

#include <gtest/gtest.h>

#include "partition/partition.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

PartitionResult balanced_result(const Hypergraph& g) {
  PartitionResult r;
  r.side.assign(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) r.side[u] = 1;
  Partition p(g, r.side);
  r.cut_cost = p.cut_cost();
  return r;
}

TEST(Validate, AcceptsCorrectResult) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  const PartitionResult r = balanced_result(g);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Validate, RejectsWrongLength) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PartitionResult r = balanced_result(g);
  r.side.pop_back();
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("length"), std::string::npos);
}

TEST(Validate, RejectsBadSideValue) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PartitionResult r = balanced_result(g);
  r.side[3] = 2;
  EXPECT_FALSE(validate_result(g, balance, r).ok);
}

TEST(Validate, RejectsImbalance) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PartitionResult r;
  r.side.assign(g.num_nodes(), 0);  // everything on one side
  Partition p(g, r.side);
  r.cut_cost = p.cut_cost();
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("balance"), std::string::npos);
}

TEST(Validate, RejectsWrongCutClaim) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PartitionResult r = balanced_result(g);
  r.cut_cost += 1.0;
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("cut mismatch"), std::string::npos);
}

}  // namespace
}  // namespace prop
