#include "fm/fm_gains.h"

#include <gtest/gtest.h>

#include "core/figure1_example.h"
#include "hypergraph/builder.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(FmGains, Figure1Values) {
  const Figure1Example ex = make_figure1_example();
  const Partition part(ex.graph, ex.side);
  // Paper Fig. 1a: nodes 1, 2, 3 have gain 2; 10, 11 gain 1; 4..9 gain -1.
  for (int k = 1; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(fm_gain(part, ex.node(k)), 2.0) << "node " << k;
  }
  EXPECT_DOUBLE_EQ(fm_gain(part, ex.node(10)), 1.0);
  EXPECT_DOUBLE_EQ(fm_gain(part, ex.node(11)), 1.0);
  for (int k = 4; k <= 9; ++k) {
    EXPECT_DOUBLE_EQ(fm_gain(part, ex.node(k)), -1.0) << "node " << k;
  }
}

TEST(FmGains, AllGainsMatchPointwise) {
  const Hypergraph g = testing::small_random_circuit();
  Rng rng(31);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  const Partition part(g, sides);
  const auto gains = fm_all_gains(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(gains[u], fm_gain(part, u));
  }
}

/// Property: the incremental update rules keep every free node's gain equal
/// to a from-scratch recomputation across a random locked move sequence.
TEST(FmGains, IncrementalUpdatesMatchRecompute) {
  const Hypergraph g = testing::small_random_circuit(55);
  Rng rng(55);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition part(g, sides);

  std::vector<double> gain = fm_all_gains(part);
  std::vector<std::uint8_t> locked(g.num_nodes(), 0);

  for (int step = 0; step < 120; ++step) {
    // Pick any free node.
    NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    int guard = 0;
    while (locked[u] && guard++ < 10000) {
      u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    }
    if (locked[u]) break;
    locked[u] = 1;
    fm_move_with_updates(
        part, u, [&](NodeId v) { return locked[v] == 0; },
        [&](NodeId v, double delta) { gain[v] += delta; });

    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!locked[v]) {
        ASSERT_NEAR(gain[v], fm_gain(part, v), 1e-9)
            << "node " << v << " after step " << step;
      }
    }
  }
}

TEST(FmGains, SinglePinNetContributesNothing) {
  HypergraphBuilder b(2);
  b.add_net({0});
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 1};
  const Partition part(g, sides);
  EXPECT_DOUBLE_EQ(fm_gain(part, 0), 1.0);  // only the 2-pin cut net counts
}

TEST(FmGains, WeightedNets) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 3.0);  // cut
  b.add_net({0, 2}, 2.0);  // internal
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 1, 0};
  const Partition part(g, sides);
  EXPECT_DOUBLE_EQ(fm_gain(part, 0), 3.0 - 2.0);
}

}  // namespace
}  // namespace prop
