#include "fm/fm_partitioner.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

class FmStructures : public ::testing::TestWithParam<FmStructure> {};

INSTANTIATE_TEST_SUITE_P(BucketAndTree, FmStructures,
                         ::testing::Values(FmStructure::kBucket,
                                           FmStructure::kTree),
                         [](const auto& info) {
                           return info.param == FmStructure::kBucket ? "bucket"
                                                                     : "tree";
                         });

TEST_P(FmStructures, FindsPlantedCutOnChain) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);  // optimal bisection cut = 1
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm({GetParam()});
  const MultiRunResult r = run_many(fm, g, balance, 10, 42);
  EXPECT_LE(r.best.cut_cost, 2.0);  // near-optimal over 10 starts
}

TEST_P(FmStructures, ResultIsValidAndBalanced) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm({GetParam()});
  const PartitionResult r = fm.run(g, balance, 7);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST_P(FmStructures, NeverWorseThanInitialPartition) {
  const Hypergraph g = testing::small_random_circuit(3);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Partition part(g, random_balanced_sides(g, balance, rng));
    const double initial_cut = part.cut_cost();
    const RefineOutcome out = fm_refine(part, balance, {GetParam()});
    EXPECT_LE(out.cut_cost, initial_cut);
    EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
    EXPECT_TRUE(balance.feasible(part.side_size(0)));
  }
}

TEST_P(FmStructures, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(5);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm({GetParam()});
  const PartitionResult a = fm.run(g, balance, 99);
  const PartitionResult b = fm.run(g, balance, 99);
  EXPECT_EQ(a.side, b.side);
  EXPECT_DOUBLE_EQ(a.cut_cost, b.cut_cost);
}

TEST(FmPartitioner, BucketAndTreeAgreeOnQuality) {
  // Same seeds, same selection rule: bucket and tree must produce the same
  // move sequence on unit-cost nets and hence identical cuts.
  const Hypergraph g = testing::small_random_circuit(9);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner bucket({FmStructure::kBucket});
  FmPartitioner tree({FmStructure::kTree});
  double bucket_total = 0.0;
  double tree_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    bucket_total += bucket.run(g, balance, seed).cut_cost;
    tree_total += tree.run(g, balance, seed).cut_cost;
  }
  // Tie-breaking inside the containers differs, so allow small divergence.
  EXPECT_NEAR(bucket_total, tree_total, 0.25 * bucket_total + 8.0);
}

TEST(FmPartitioner, WeightedNetsUseTreeAutomatically) {
  HypergraphBuilder b(8);
  for (NodeId u = 0; u < 8; ++u) b.add_net({u, static_cast<NodeId>((u + 1) % 8)}, 1.5);
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm({FmStructure::kBucket});  // must fall back internally
  const PartitionResult r = fm.run(g, balance, 1);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_DOUBLE_EQ(r.cut_cost, 3.0);  // ring of weight-1.5 nets: 2 nets cut
}

TEST(FmPartitioner, RespectsFortyFiveWindow) {
  const Hypergraph g = testing::small_random_circuit(17);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  const PartitionResult r = fm.run(g, balance, 5);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(FmPartitioner, MultiRunImprovesOverSingle) {
  const Hypergraph g = testing::small_random_circuit(23, 300, 380, 1200);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const MultiRunResult one = run_many(fm, g, balance, 1, 1);
  const MultiRunResult twenty = run_many(fm, g, balance, 20, 1);
  EXPECT_LE(twenty.best_cut(), one.best_cut());
  EXPECT_EQ(twenty.cuts.size(), 20u);
}

TEST(FmPartitioner, PassCountIsSmall) {
  // The paper: "the number of passes required ... is two to four".
  const Hypergraph g = testing::small_random_circuit(29);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const PartitionResult r = fm.run(g, balance, 11);
  EXPECT_LE(r.passes, 12);
  EXPECT_GE(r.passes, 1);
}

}  // namespace
}  // namespace prop
