#include "la/la_gains.h"

#include <gtest/gtest.h>

#include "core/figure1_example.h"
#include "fm/fm_gains.h"
#include "hypergraph/builder.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(LaGains, Figure1Vectors) {
  const Figure1Example ex = make_figure1_example();
  const Partition part(ex.graph, ex.side);
  LaGainCalculator calc(part, 3);
  // Paper Fig. 1a: gain(1) = (2,0,0); gain(2) = gain(3) = (2,0,1).
  EXPECT_EQ(calc.gain(ex.node(1)).to_string(), "(2,0,0)");
  EXPECT_EQ(calc.gain(ex.node(2)).to_string(), "(2,0,1)");
  EXPECT_EQ(calc.gain(ex.node(3)).to_string(), "(2,0,1)");
  EXPECT_GT(calc.gain(ex.node(2)), calc.gain(ex.node(1)));
  // LA cannot separate nodes 2 and 3 — the paper's motivating limitation.
  EXPECT_EQ(calc.gain(ex.node(2)), calc.gain(ex.node(3)));
}

TEST(LaGains, LevelOneEqualsFmGain) {
  const Hypergraph g = testing::small_random_circuit(71);
  Rng rng(71);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  const Partition part(g, sides);
  LaGainCalculator calc(part, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(static_cast<double>(calc.gain(u).at(1)), fm_gain(part, u))
        << "node " << u;
  }
}

TEST(LaGains, InternalNetPenalizesLevelOne) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});  // internal to side 0
  b.add_net({0, 2});  // cut
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
  const Partition part(g, sides);
  LaGainCalculator calc(part, 2);
  // Node 0: +1 (sole pin of cut net) - 1 (internal net enters cut) = 0 at
  // level 1; level 2: internal net {0,1} has beta_A = 2 -> +1; cut net has
  // beta_B = 1 -> -1.
  const GainVector v = calc.gain(0);
  EXPECT_EQ(v.at(1), 0);
  EXPECT_EQ(v.at(2), 0);
}

TEST(LaGains, LockingRemovesContributions) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
  const Partition part(g, sides);
  LaGainCalculator calc(part, 4);

  // Free everywhere: node 0 sees beta_A = 2 (+1 at level 2), beta_B = 2
  // (-1 at level 3).
  GainVector v = calc.gain(0);
  EXPECT_EQ(v.at(2), 1);
  EXPECT_EQ(v.at(3), -1);

  // Lock node 1 (same side): the net can no longer leave side 0 -> positive
  // term vanishes at every level.
  calc.lock(1);
  v = calc.gain(0);
  EXPECT_EQ(v.at(1), 0);
  EXPECT_EQ(v.at(2), 0);
  EXPECT_EQ(v.at(3), -1);
}

TEST(LaGains, LockOtherSideRemovesNegativeTerm) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  const Hypergraph g = std::move(b).build();
  const std::vector<std::uint8_t> sides = {0, 0, 1, 1};
  const Partition part(g, sides);
  LaGainCalculator calc(part, 4);
  calc.lock(2);  // other side: net can never be pulled to side 0
  const GainVector v = calc.gain(0);
  EXPECT_EQ(v.at(2), 1);   // positive term intact
  EXPECT_EQ(v.at(3), 0);   // negative term gone
}

TEST(LaGains, MoveLockedTracksCounts) {
  const Hypergraph g = testing::small_random_circuit(77);
  Rng rng(77);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition part(g, sides);
  LaGainCalculator calc(part, 2);

  // Lock+move a few nodes, then verify level-1 gains still equal FM gains
  // computed on a fresh calculator with identical locks.
  std::vector<NodeId> movers;
  for (int i = 0; i < 10; ++i) {
    movers.push_back(static_cast<NodeId>(rng.bounded(g.num_nodes() / 2) * 2));
  }
  for (const NodeId u : movers) {
    if (!calc.is_free(u)) continue;
    const int from = part.side(u);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
  }
  LaGainCalculator fresh(part, 2);
  for (const NodeId u : movers) {
    if (fresh.is_free(u)) fresh.lock(u);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (calc.is_free(u)) {
      EXPECT_EQ(calc.gain(u), fresh.gain(u)) << "node " << u;
    }
  }
}

/// The LA pass maintains vectors by per-net contribution deltas; the
/// contributions must sum back to the full gain under arbitrary lock sets.
TEST(LaGains, NetContributionsSumToGain) {
  const Hypergraph g = testing::small_random_circuit(81);
  Rng rng(81);
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  Partition part(g, sides);
  LaGainCalculator calc(part, 3);
  for (int i = 0; i < 12; ++i) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!calc.is_free(u)) continue;
    const int from = part.side(u);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!calc.is_free(v)) continue;
    GainVector sum(3);
    for (const NetId n : g.nets_of(v)) sum += calc.net_contribution(n, v);
    EXPECT_EQ(sum, calc.gain(v)) << "node " << v;
  }
}

TEST(LaGains, RejectsBadDepth) {
  const Hypergraph g = testing::small_random_circuit(79);
  std::vector<std::uint8_t> sides(g.num_nodes(), 0);
  const Partition part(g, sides);
  EXPECT_THROW(LaGainCalculator(part, 0), std::invalid_argument);
  EXPECT_THROW(LaGainCalculator(part, 100), std::invalid_argument);
}

}  // namespace
}  // namespace prop
