#include "la/la_partitioner.h"

#include <gtest/gtest.h>

#include "fm/fm_partitioner.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

class LaDepths : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(TwoThreeFour, LaDepths, ::testing::Values(2, 3, 4));

TEST_P(LaDepths, ResultIsValid) {
  const Hypergraph g = testing::small_random_circuit();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  LaPartitioner la({GetParam()});
  const PartitionResult r = la.run(g, balance, 3);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST_P(LaDepths, FindsPlantedCut) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  LaPartitioner la({GetParam()});
  const MultiRunResult r = run_many(la, g, balance, 10, 21);
  EXPECT_LE(r.best.cut_cost, 2.0);
}

TEST_P(LaDepths, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(41);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  LaPartitioner la({GetParam()});
  EXPECT_EQ(la.run(g, balance, 5).side, la.run(g, balance, 5).side);
}

TEST(LaPartitioner, NameCarriesDepth) {
  EXPECT_EQ(LaPartitioner({2}).name(), "LA-2");
  EXPECT_EQ(LaPartitioner({3}).name(), "LA-3");
}

TEST(LaPartitioner, NeverWorseThanInitial) {
  const Hypergraph g = testing::small_random_circuit(43);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(43);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const double initial = part.cut_cost();
  const RefineOutcome out = la_refine(part, balance, {2});
  EXPECT_LE(out.cut_cost, initial);
  EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
}

TEST(LaPartitioner, ComparableOrBetterThanFmOnAverage) {
  // The paper finds LA consistently better than FM; on a clustered netlist
  // with the same number of starts the totals should at least be close.
  const Hypergraph g = testing::small_random_circuit(47, 400, 500, 1700);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  LaPartitioner la({2});
  const MultiRunResult fm_r = run_many(fm, g, balance, 10, 9);
  const MultiRunResult la_r = run_many(la, g, balance, 10, 9);
  EXPECT_LE(la_r.best_cut(), fm_r.best_cut() * 1.25 + 2.0);
}

}  // namespace
}  // namespace prop
