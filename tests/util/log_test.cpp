#include "util/log.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emitting below the threshold must be a safe no-op.
  log_info() << "suppressed " << 42;
  set_log_level(before);
}

TEST(Log, StreamingBuildsMessages) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  log_error() << "value=" << 3.5 << " name=" << std::string("x");
  set_log_level(before);
}

}  // namespace
}  // namespace prop
