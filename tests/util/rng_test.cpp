#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace prop {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(13), 13u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(MixSeed, SensitiveToEveryPart) {
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 3, 2));
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(2, 2, 3));
  EXPECT_EQ(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
}

}  // namespace
}  // namespace prop
