#include "util/timer.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

TEST(WallTimer, Monotonic) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(CpuTimer, AdvancesUnderWork) {
  CpuTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(TimingStats, Accumulates) {
  TimingStats s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.total(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(TimingStats, EmptyIsZero) {
  TimingStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

}  // namespace
}  // namespace prop
