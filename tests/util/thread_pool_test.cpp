#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

namespace prop {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SizeIsClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).size(), 1);
  EXPECT_EQ(ThreadPool(-3).size(), 1);
  EXPECT_EQ(ThreadPool(2).size(), 2);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, VoidTasksAreSupported) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto f = pool.submit([&ran] { ran.store(true); });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit(
        [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500LL * 501 / 2);
}

}  // namespace
}  // namespace prop
