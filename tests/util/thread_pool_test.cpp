#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

namespace prop {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SizeIsClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).size(), 1);
  EXPECT_EQ(ThreadPool(-3).size(), 1);
  EXPECT_EQ(ThreadPool(2).size(), 2);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, VoidTasksAreSupported) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto f = pool.submit([&ran] { ran.store(true); });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit(
        [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500LL * 501 / 2);
}

TEST(SplitIndexRange, CoversEveryIndexOnceInOrder) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 100u}) {
    for (const int parts : {1, 2, 3, 4, 16}) {
      const auto ranges = split_index_range(n, parts);
      std::size_t next = 0;
      for (const IndexRange& r : ranges) {
        EXPECT_EQ(r.begin, next);
        EXPECT_LT(r.begin, r.end);  // no empty chunks emitted
        next = r.end;
      }
      EXPECT_EQ(next, n) << "n=" << n << " parts=" << parts;
      EXPECT_LE(ranges.size(), static_cast<std::size_t>(parts));
    }
  }
}

TEST(SplitIndexRange, ChunkingDependsOnlyOnInputs) {
  // The round engine's determinism rests on this: same (n, parts) -> same
  // chunk boundaries, every time.
  EXPECT_EQ(split_index_range(10, 3).size(), 3u);
  const auto a = split_index_range(1000, 7);
  const auto b = split_index_range(1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ParallelFor, MatchesSerialOverDisjointSlots) {
  const std::size_t n = 10000;
  std::vector<int> serial(n, 0);
  parallel_for(nullptr, n, [&serial](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      serial[i] = static_cast<int>(i * 3 + 1);
    }
  });
  ThreadPool pool(3);
  std::vector<int> threaded(n, 0);
  parallel_for(&pool, n, [&threaded](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      threaded[i] = static_cast<int>(i * 3 + 1);
    }
  });
  EXPECT_EQ(threaded, serial);
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(&pool, 0, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PropagatesChunkExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::runtime_error("chunk 0");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace prop
