#include "util/cli.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const auto args = parse({"prog", "--runs=20", "--name=balu"});
  EXPECT_EQ(args.get_int_or("runs", 0), 20);
  EXPECT_EQ(args.get_or("name", ""), "balu");
}

TEST(Cli, SpaceSeparatedForm) {
  const auto args = parse({"prog", "--runs", "7"});
  EXPECT_EQ(args.get_int_or("runs", 0), 7);
}

TEST(Cli, BooleanFlag) {
  const auto args = parse({"prog", "--fast"});
  EXPECT_TRUE(args.get_bool_or("fast", false));
  EXPECT_FALSE(args.get_bool_or("slow", false));
}

TEST(Cli, BooleanExplicitValues) {
  const auto args = parse({"prog", "--a=true", "--b=0", "--c=off", "--d=yes"});
  EXPECT_TRUE(args.get_bool_or("a", false));
  EXPECT_FALSE(args.get_bool_or("b", true));
  EXPECT_FALSE(args.get_bool_or("c", true));
  EXPECT_TRUE(args.get_bool_or("d", false));
}

TEST(Cli, Positional) {
  const auto args = parse({"prog", "input.hgr", "--k=4", "out.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.hgr");
  EXPECT_EQ(args.positional()[1], "out.txt");
}

TEST(Cli, DoubleValues) {
  const auto args = parse({"prog", "--eps=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double_or("eps", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 1.5), 1.5);
}

TEST(Cli, MissingReturnsFallback) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get_int_or("runs", 42), 42);
  EXPECT_EQ(args.get_or("name", "dflt"), "dflt");
  EXPECT_FALSE(args.get("anything").has_value());
}

TEST(Cli, ProgramName) {
  const auto args = parse({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

TEST(Cli, FlagNamesEnumerated) {
  const auto args = parse({"prog", "--b=1", "--a=2"});
  const auto names = args.flag_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace prop
