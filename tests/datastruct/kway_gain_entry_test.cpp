// KWayGainEntry inside the gain containers: the target part is a payload,
// never part of the ordering, so the AVL tree's O(1) cached max, LIFO tie
// order and assign_sorted bulk load behave exactly as they do for plain
// double gains (datastruct/kway_gain_entry.h).
#include "datastruct/kway_gain_entry.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "datastruct/avl_tree.h"
#include "util/rng.h"

namespace prop {
namespace {

using GainTree = AvlTree<KWayGainEntry, KWayGainEntryLess>;

TEST(KWayGainEntryTree, MaxPicksGainNotTarget) {
  GainTree t(8);
  t.insert(0, {1.0, 3});
  t.insert(1, {5.0, 0});
  t.insert(2, {-2.0, 7});
  EXPECT_EQ(t.max(), 1u);
  EXPECT_EQ(t.key(1).target, 0u);
  t.erase(1);
  EXPECT_EQ(t.max(), 0u);
  EXPECT_EQ(t.key(0).target, 3u);
}

TEST(KWayGainEntryTree, EqualGainsKeepLifoAcrossTargets) {
  // Ties compare equal regardless of target: the newest insert wins max(),
  // just like the 2-way double-keyed trees.
  GainTree t(8);
  t.insert(0, {2.0, 1});
  t.insert(1, {2.0, 5});
  t.insert(2, {2.0, 3});
  EXPECT_EQ(t.max(), 2u);
  t.erase(2);
  EXPECT_EQ(t.max(), 1u);
  t.erase(1);
  EXPECT_EQ(t.max(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(KWayGainEntryTree, SameGainNewTargetIsPayloadOnlyRewrite) {
  // update() whose gain still falls strictly between the in-order neighbors
  // takes the in-place fast path: position untouched, only the payload
  // changes.  This is the refiner's "best move redirected to a different
  // part at (locally unique) unchanged gain" case.
  GainTree t(8);
  t.insert(0, {1.0, 0});
  t.insert(1, {2.0, 0});
  EXPECT_EQ(t.max(), 1u);
  t.update(0, {1.0, 6});
  EXPECT_EQ(t.key(0).target, 6u);
  EXPECT_EQ(t.max(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(KWayGainEntryTree, EqualGainUpdateReinsertsAsNewest) {
  // When the updated gain ties an existing key the fast path is forbidden
  // (another handle holds the same key), so update() erases and re-inserts —
  // the updated handle becomes the newest tie and wins max().  The k-way
  // refiner relies on ordering ignoring the target either way.
  GainTree t(8);
  t.insert(0, {1.0, 0});
  t.insert(1, {1.0, 0});
  EXPECT_EQ(t.max(), 1u);
  t.update(0, {1.0, 6});
  EXPECT_EQ(t.key(0).target, 6u);
  EXPECT_EQ(t.max(), 0u);  // re-inserted, so 0 is now the newest tie
  EXPECT_TRUE(t.check_invariants());
}

TEST(KWayGainEntryTree, UpdateReordersOnGainChange) {
  GainTree t(8);
  t.insert(0, {1.0, 2});
  t.insert(1, {3.0, 1});
  t.update(0, {4.0, 5});
  EXPECT_EQ(t.max(), 0u);
  EXPECT_EQ(t.key(0).target, 5u);
  t.update(0, {-1.0, 5});
  EXPECT_EQ(t.max(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(KWayGainEntryTree, AssignSortedPreservesPayloadsAndMax) {
  // The pass-start bulk load: ascending by gain, newest-equal-gain last.
  GainTree t(16);
  std::vector<std::pair<KWayGainEntry, GainTree::Handle>> items = {
      {{-1.0, 2}, 4}, {{0.5, 1}, 2}, {{0.5, 3}, 7}, {{2.0, 0}, 1}};
  t.assign_sorted(items.data(), static_cast<std::uint32_t>(items.size()));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.max(), 1u);
  EXPECT_EQ(t.key(1).target, 0u);
  EXPECT_EQ(t.key(7).target, 3u);
  EXPECT_TRUE(t.check_invariants());
  // Descending walk sees gains non-increasing with payloads intact.
  double last = 1e300;
  t.for_each_descending([&](GainTree::Handle h, const KWayGainEntry& e) {
    EXPECT_LE(e.gain, last);
    EXPECT_EQ(e.target, t.key(h).target);
    last = e.gain;
    return true;
  });
}

TEST(KWayGainEntryTree, RandomOpsMatchDoubleKeyedReference) {
  // Property: a KWayGainEntry tree ordered by gain behaves exactly like a
  // plain double-keyed tree on the same operation sequence — targets are
  // invisible to the structure.
  constexpr GainTree::Handle kCap = 120;
  GainTree entry_tree(kCap);
  AvlTree<double> double_tree(kCap);
  Rng rng(4242);
  for (int op = 0; op < 8000; ++op) {
    const auto h = static_cast<GainTree::Handle>(rng.bounded(kCap));
    const double gain = rng.uniform() * 20.0 - 10.0;
    const auto target = static_cast<NodeId>(rng.bounded(16));
    if (!entry_tree.contains(h)) {
      entry_tree.insert(h, {gain, target});
      double_tree.insert(h, gain);
    } else if (rng.chance(0.4)) {
      entry_tree.erase(h);
      double_tree.erase(h);
    } else {
      entry_tree.update(h, {gain, target});
      double_tree.update(h, gain);
      ASSERT_EQ(entry_tree.key(h).target, target);
    }
    ASSERT_EQ(entry_tree.size(), double_tree.size());
    if (!entry_tree.empty()) {
      ASSERT_EQ(entry_tree.max(), double_tree.max());
    }
  }
  ASSERT_TRUE(entry_tree.check_invariants());
}

}  // namespace
}  // namespace prop
