#include "datastruct/avl_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/rng.h"

namespace prop {
namespace {

using Tree = AvlTree<int>;

TEST(AvlTree, EmptyInvariants) {
  Tree t(16);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(AvlTree, InsertAndMax) {
  Tree t(16);
  t.insert(3, 10);
  t.insert(5, 30);
  t.insert(7, 20);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.max(), 5u);
  EXPECT_EQ(t.key(5), 30);
  EXPECT_TRUE(t.check_invariants());
}

TEST(AvlTree, MinTracksSmallest) {
  Tree t(16);
  t.insert(0, 5);
  t.insert(1, -7);
  t.insert(2, 3);
  EXPECT_EQ(t.min(), 1u);
}

TEST(AvlTree, EraseLeafRootAndInner) {
  Tree t(16);
  for (Tree::Handle h = 0; h < 7; ++h) t.insert(h, static_cast<int>(h));
  t.erase(6);  // max leaf-ish
  EXPECT_FALSE(t.contains(6));
  t.erase(3);  // likely root of a balanced insert sequence
  t.erase(0);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.max(), 5u);
}

TEST(AvlTree, UpdateMovesHandle) {
  Tree t(8);
  t.insert(1, 10);
  t.insert(2, 20);
  t.update(1, 30);
  EXPECT_EQ(t.max(), 1u);
  EXPECT_EQ(t.key(1), 30);
  EXPECT_TRUE(t.check_invariants());
}

TEST(AvlTree, DuplicateKeysLifoAtMax) {
  Tree t(8);
  t.insert(1, 7);
  t.insert(2, 7);
  t.insert(3, 7);
  EXPECT_EQ(t.max(), 3u);  // newest equal key wins
  t.erase(3);
  EXPECT_EQ(t.max(), 2u);
}

TEST(AvlTree, DescendingIterationSorted) {
  Tree t(32);
  Rng rng(5);
  for (Tree::Handle h = 0; h < 32; ++h) {
    t.insert(h, static_cast<int>(rng.bounded(10)));
  }
  int last = 1 << 30;
  int count = 0;
  t.for_each_descending([&](Tree::Handle, int k) {
    EXPECT_LE(k, last);
    last = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 32);
}

TEST(AvlTree, DescendingIterationEarlyExit) {
  Tree t(8);
  for (Tree::Handle h = 0; h < 8; ++h) t.insert(h, static_cast<int>(h));
  int seen = 0;
  t.for_each_descending([&](Tree::Handle, int) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST(AvlTree, ClearResets) {
  Tree t(8);
  t.insert(1, 5);
  t.insert(2, 6);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.contains(1));
  t.insert(1, 9);
  EXPECT_EQ(t.max(), 1u);
}

/// Property test: random interleaving of insert/erase/update matches a
/// reference std::multiset, and AVL invariants hold throughout.
TEST(AvlTree, RandomOpsMatchMultiset) {
  constexpr Tree::Handle kCap = 300;
  Tree t(kCap);
  std::map<Tree::Handle, int> reference;  // handle -> key
  Rng rng(12345);

  for (int op = 0; op < 20000; ++op) {
    const auto h = static_cast<Tree::Handle>(rng.bounded(kCap));
    const int key = static_cast<int>(rng.range(-50, 50));
    if (!t.contains(h)) {
      t.insert(h, key);
      reference[h] = key;
    } else if (rng.chance(0.5)) {
      t.erase(h);
      reference.erase(h);
    } else {
      t.update(h, key);
      reference[h] = key;
    }

    ASSERT_EQ(t.size(), reference.size());
    if (op % 500 == 0) ASSERT_TRUE(t.check_invariants());
    if (!reference.empty()) {
      int max_key = reference.begin()->second;
      for (const auto& [rh, rk] : reference) max_key = std::max(max_key, rk);
      ASSERT_EQ(t.key(t.max()), max_key);
    }
  }
  ASSERT_TRUE(t.check_invariants());

  // Full descending drain must be the sorted multiset of keys.
  std::multiset<int, std::greater<>> expect_keys;
  for (const auto& [rh, rk] : reference) expect_keys.insert(rk);
  auto it = expect_keys.begin();
  t.for_each_descending([&](Tree::Handle, int k) {
    EXPECT_EQ(k, *it);
    ++it;
    return true;
  });
  EXPECT_EQ(it, expect_keys.end());
}

TEST(AvlTree, SequentialInsertStaysBalancedShallow) {
  constexpr Tree::Handle kCap = 4096;
  Tree t(kCap);
  for (Tree::Handle h = 0; h < kCap; ++h) {
    t.insert(h, static_cast<int>(h));  // adversarial ascending order
  }
  EXPECT_TRUE(t.check_invariants());  // includes height verification
  EXPECT_EQ(t.max(), kCap - 1);
  EXPECT_EQ(t.min(), 0u);
}

/// Regression guard for the predecessor-walk direction (a right child with
/// no left subtree must step to its parent; a left child must climb):
/// descending iteration must visit every node exactly once for adversarial
/// insertion orders.
TEST(AvlTree, PrevVisitsEveryNodeOnceAllShapes) {
  const auto check_full_walk = [](const std::vector<int>& keys) {
    Tree t(static_cast<Tree::Handle>(keys.size()));
    for (Tree::Handle h = 0; h < keys.size(); ++h) {
      t.insert(h, keys[h]);
    }
    std::vector<char> seen(keys.size(), 0);
    int count = 0;
    int last = 1 << 30;
    t.for_each_descending([&](Tree::Handle h, int k) {
      EXPECT_FALSE(seen[h]) << "handle visited twice";
      seen[h] = 1;
      EXPECT_LE(k, last);
      last = k;
      ++count;
      return true;
    });
    EXPECT_EQ(count, static_cast<int>(keys.size()));
  };
  check_full_walk({1, 2, 3, 4, 5, 6, 7});        // ascending
  check_full_walk({7, 6, 5, 4, 3, 2, 1});        // descending
  check_full_walk({4, 2, 6, 1, 3, 5, 7});        // balanced
  check_full_walk({1, 7, 2, 6, 3, 5, 4});        // zigzag
  check_full_walk({5, 5, 5, 5, 5});              // all duplicates
  check_full_walk({2, 1, 2, 1, 3, 3, 2});        // mixed duplicates
}

TEST(AvlTree, PrevFromMaxReachesMin) {
  Tree t(64);
  Rng rng(99);
  for (Tree::Handle h = 0; h < 64; ++h) {
    t.insert(h, static_cast<int>(rng.range(-20, 20)));
  }
  Tree::Handle cur = t.max();
  Tree::Handle last = cur;
  int steps = 0;
  while (cur != Tree::kNull) {
    last = cur;
    cur = t.prev(cur);
    ASSERT_LE(++steps, 64);
  }
  EXPECT_EQ(steps, 64);
  EXPECT_EQ(last, t.min());
}

TEST(AvlTree, DoubleKeysWork) {
  AvlTree<double> t(8);
  t.insert(0, 1.5);
  t.insert(1, -0.25);
  t.insert(2, 1.5000001);
  EXPECT_EQ(t.max(), 2u);
}

}  // namespace
}  // namespace prop
