#include "datastruct/bucket_list.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace prop {
namespace {

TEST(BucketList, InsertBestErase) {
  BucketList b(8, 5);
  b.insert(0, 2);
  b.insert(1, -3);
  b.insert(2, 5);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.best(), 2u);
  b.erase(2);
  EXPECT_EQ(b.best(), 0u);
  EXPECT_FALSE(b.contains(2));
}

TEST(BucketList, LifoWithinBucket) {
  BucketList b(8, 3);
  b.insert(0, 1);
  b.insert(1, 1);
  b.insert(2, 1);
  EXPECT_EQ(b.best(), 2u);
  b.erase(2);
  EXPECT_EQ(b.best(), 1u);
}

TEST(BucketList, UpdateMovesBuckets) {
  BucketList b(8, 5);
  b.insert(0, 0);
  b.insert(1, 1);
  b.update(0, 4);
  EXPECT_EQ(b.best(), 0u);
  EXPECT_EQ(b.gain(0), 4);
  b.update(0, -5);
  EXPECT_EQ(b.best(), 1u);
}

TEST(BucketList, MaxGainTracksDownward) {
  BucketList b(4, 10);
  b.insert(0, 10);
  b.insert(1, -10);
  b.erase(0);
  EXPECT_EQ(b.best(), 1u);
}

TEST(BucketList, BestWherePredicate) {
  BucketList b(8, 5);
  b.insert(0, 5);
  b.insert(1, 4);
  b.insert(2, 3);
  const auto found = b.best_where([](BucketList::Handle h) { return h != 0; });
  EXPECT_EQ(found, 1u);
  const auto none = b.best_where([](BucketList::Handle) { return false; });
  EXPECT_EQ(none, BucketList::kNull);
}

TEST(BucketList, ClearResets) {
  BucketList b(8, 5);
  b.insert(0, 1);
  b.clear();
  EXPECT_TRUE(b.empty());
  b.insert(0, -1);
  EXPECT_EQ(b.best(), 0u);
}

TEST(BucketList, TargetPayloadRidesAlong) {
  // K-way refiners store the best move's destination part with the gain;
  // 2-way callers omit it and read back 0.
  BucketList b(8, 5);
  b.insert(0, 2, 3);
  b.insert(1, 2);
  EXPECT_EQ(b.target(0), 3u);
  EXPECT_EQ(b.target(1), 0u);
  b.update(0, 4, 7);
  EXPECT_EQ(b.gain(0), 4);
  EXPECT_EQ(b.target(0), 7u);
}

TEST(BucketList, SameGainNewTargetKeepsLifoOrder) {
  // Payload-only update: the gain is unchanged, so the handle must keep its
  // LIFO slot within the bucket — only target() changes.
  BucketList b(8, 5);
  b.insert(0, 1, 2);
  b.insert(1, 1, 2);
  EXPECT_EQ(b.best(), 1u);
  b.update(0, 1, 6);
  EXPECT_EQ(b.target(0), 6u);
  EXPECT_EQ(b.best(), 1u);  // 1 is still the newest in the gain-1 bucket
  b.erase(1);
  EXPECT_EQ(b.best(), 0u);
  EXPECT_EQ(b.target(0), 6u);
}

/// Property: random ops match a reference map; best() always returns a
/// handle of maximal gain.
TEST(BucketList, RandomOpsMatchReference) {
  constexpr BucketList::Handle kCap = 200;
  constexpr int kMaxGain = 20;
  BucketList b(kCap, kMaxGain);
  std::map<BucketList::Handle, int> ref;
  Rng rng(777);

  for (int op = 0; op < 20000; ++op) {
    const auto h = static_cast<BucketList::Handle>(rng.bounded(kCap));
    const int gain = static_cast<int>(rng.range(-kMaxGain, kMaxGain));
    if (!b.contains(h)) {
      b.insert(h, gain);
      ref[h] = gain;
    } else if (rng.chance(0.4)) {
      b.erase(h);
      ref.erase(h);
    } else {
      b.update(h, gain);
      ref[h] = gain;
    }
    ASSERT_EQ(b.size(), ref.size());
    if (!ref.empty()) {
      int max_gain = ref.begin()->second;
      for (const auto& [rh, rg] : ref) max_gain = std::max(max_gain, rg);
      ASSERT_EQ(b.gain(b.best()), max_gain);
    }
  }
}

}  // namespace
}  // namespace prop
