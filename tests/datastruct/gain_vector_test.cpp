#include "datastruct/gain_vector.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

GainVector make(std::initializer_list<int> values) {
  GainVector v(static_cast<int>(values.size()));
  int level = 1;
  for (const int x : values) v.set(level++, x);
  return v;
}

TEST(GainVector, LexicographicOrder) {
  // The paper's example: (2,0,1) > (2,0,0).
  EXPECT_GT(make({2, 0, 1}), make({2, 0, 0}));
  EXPECT_LT(make({1, 9, 9}), make({2, 0, 0}));
  EXPECT_EQ(make({2, 0, 1}), make({2, 0, 1}));
}

TEST(GainVector, FirstLevelDominates) {
  EXPECT_GT(make({3, -5, -5}), make({2, 5, 5}));
}

TEST(GainVector, AddAccumulates) {
  GainVector v(2);
  v.add(1, 2);
  v.add(1, -1);
  v.add(2, 3);
  EXPECT_EQ(v.at(1), 1);
  EXPECT_EQ(v.at(2), 3);
}

TEST(GainVector, ToStringMatchesPaperNotation) {
  EXPECT_EQ(make({2, 0, 1}).to_string(), "(2,0,1)");
  EXPECT_EQ(make({-1}).to_string(), "(-1)");
}

TEST(GainVector, DefaultIsZeroLevels) {
  GainVector v;
  EXPECT_EQ(v.levels(), 0);
  EXPECT_EQ(v.to_string(), "()");
}

}  // namespace
}  // namespace prop
