// prop_serve — the partitioning job server (DESIGN.md §4h).
//
//   prop_serve                          # serve line-JSON on stdin/stdout
//   prop_serve --socket /tmp/prop.sock  # serve on a unix domain socket
//
// One JSON request per line in, one JSON response per line out:
//
//   {"op":"submit","id":"j1","circuit":"balu","algo":"prop","runs":3,
//    "seed":7,"deadline_ms":500,"priority":1,"tenant":"alpha"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses are exactly-once per admitted id, overload is shed with a
// structured kShedOverload status, and worker exceptions never kill the
// server (see service/server.h for the full contract).  Chaos soaks arm
// --inject (grammar in fault_injection.h), e.g.
//
//   prop_serve --inject='validate-fail~0.02,serve-exec~0.01' --workers 4
//
// Socket mode accepts one client at a time; the server drains between
// connections so a response never lands on a later client's stream.  A
// final request line sent without a trailing newline before the client
// closes its write side is still processed — EOF terminates the line
// (service/socket_server.h documents the framing).
#include <cstdio>
#include <iostream>
#include <string>

#include "runtime/runtime_cli.h"
#include "service/server.h"

#ifndef _WIN32
#include "service/socket_server.h"
#endif

namespace {

constexpr const char* kUsage =
    "[--workers N] [--queue-limit N] [--aging-interval N]\n"
    "           [--max-retries N] [--retry-backoff-ms X] [--retry-backoff-max-ms X]\n"
    "           [--default-deadline-ms X] [--max-request-bytes N]\n"
    "           [--max-hgr-nodes N] [--max-hgr-nets N] [--max-hgr-pins N]\n"
    "           [--max-hgr-bytes N] [--inject=SPEC] [--inject-seed N]\n"
    "           [--socket PATH]";

/// Builds the ServerConfig from flags; returns false (after a diagnostic)
/// on an out-of-range value.
bool config_from_args(const prop::CliArgs& args,
                      prop::service::ServerConfig& config) {
  const auto positive_int = [&](const char* name, long long fallback,
                                long long& out) {
    out = args.get_int_or(name, fallback);
    if (out < 1) {
      std::fprintf(stderr, "error: --%s must be >= 1\n", name);
      return false;
    }
    return true;
  };
  long long v = 0;
  if (!positive_int("workers", 2, v)) return false;
  config.workers = static_cast<int>(v);
  if (!positive_int("queue-limit", 64, v)) return false;
  config.queue_limit = static_cast<std::size_t>(v);
  if (!positive_int("aging-interval", 4, v)) return false;
  config.aging_interval = static_cast<std::uint64_t>(v);
  config.max_retries = static_cast<int>(args.get_int_or("max-retries", 2));
  if (config.max_retries < 0) {
    std::fprintf(stderr, "error: --max-retries must be >= 0\n");
    return false;
  }
  config.retry_backoff_ms = args.get_double_or("retry-backoff-ms", 1.0);
  config.retry_backoff_max_ms =
      args.get_double_or("retry-backoff-max-ms", 50.0);
  config.default_deadline_ms =
      args.get_double_or("default-deadline-ms", 0.0);
  if (config.retry_backoff_ms < 0.0 || config.retry_backoff_max_ms < 0.0 ||
      config.default_deadline_ms < 0.0) {
    std::fprintf(stderr, "error: millisecond flags must be >= 0\n");
    return false;
  }
  config.max_request_bytes = static_cast<std::size_t>(
      args.get_int_or("max-request-bytes",
                      static_cast<std::int64_t>(config.max_request_bytes)));
  prop::service::ServerConfig defaults;
  config.hgr_limits.max_nodes = static_cast<std::uint64_t>(args.get_int_or(
      "max-hgr-nodes", static_cast<std::int64_t>(defaults.hgr_limits.max_nodes)));
  config.hgr_limits.max_nets = static_cast<std::uint64_t>(args.get_int_or(
      "max-hgr-nets", static_cast<std::int64_t>(defaults.hgr_limits.max_nets)));
  config.hgr_limits.max_pins = static_cast<std::uint64_t>(args.get_int_or(
      "max-hgr-pins", static_cast<std::int64_t>(defaults.hgr_limits.max_pins)));
  config.hgr_limits.max_bytes = static_cast<std::uint64_t>(args.get_int_or(
      "max-hgr-bytes", static_cast<std::int64_t>(defaults.hgr_limits.max_bytes)));
  config.inject = args.get_or("inject", "");
  config.inject_seed = static_cast<std::uint64_t>(
      args.get_int_or("inject-seed", 0x5eedfa017LL));
  return true;
}

void print_summary(const prop::service::ServerStats& s) {
  std::fprintf(stderr,
               "prop_serve: %llu lines, %llu submitted, %llu done, %llu "
               "failed, %llu shed, %llu invalid, %llu retries, max queue "
               "depth %zu\n",
               static_cast<unsigned long long>(s.lines),
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.done),
               static_cast<unsigned long long>(s.failed),
               static_cast<unsigned long long>(s.shed),
               static_cast<unsigned long long>(s.invalid),
               static_cast<unsigned long long>(s.retries),
               s.max_queue_depth);
}

/// stdin/stdout mode: the plain-pipe deployment (and the test harness).
int serve_stdio(const prop::service::ServerConfig& config) {
  prop::service::Server server(config, [](const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // clients read responses as they stream
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!server.handle_line(line)) break;
  }
  server.drain();
  print_summary(server.stats());
  return 0;
}

#ifndef _WIN32

/// Unix-socket mode: one client at a time, draining between connections so
/// a slow job's response can never land on the next client's stream.  The
/// EINTR-safe read loop, EOF line framing and race-free response fd all
/// live in service/socket_server.{h,cpp} where they are unit-tested.
int serve_socket(const prop::service::ServerConfig& config,
                 const std::string& path) {
  prop::service::SocketLineServer server(config, path);
  if (!server.listen()) return 1;
  std::fprintf(stderr, "prop_serve: listening on %s\n", path.c_str());
  server.serve();
  print_summary(server.stats());
  return 0;
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::check_flags(
          args,
          {"workers", "queue-limit", "aging-interval", "max-retries",
           "retry-backoff-ms", "retry-backoff-max-ms", "default-deadline-ms",
           "max-request-bytes", "max-hgr-nodes", "max-hgr-nets",
           "max-hgr-pins", "max-hgr-bytes", "socket"},
          kUsage)) {
    return 2;
  }

  prop::service::ServerConfig config;
  if (!config_from_args(args, config)) {
    return prop::usage_error(argv[0], kUsage);
  }

  try {
    if (const auto socket_path = args.get("socket")) {
#ifndef _WIN32
      return serve_socket(config, *socket_path);
#else
      std::fprintf(stderr, "error: --socket is not supported on this platform\n");
      return 1;
#endif
    }
    return serve_stdio(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
