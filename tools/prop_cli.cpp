// prop_cli — command-line driver for the whole partitioner suite.
//
//   prop_cli --hgr netlist.hgr --algo prop --runs 20 --balance 45-55 \
//            --seed 1 --out parts.txt
//   prop_cli --circuit industry2 --algo fm --runs 100
//   prop_cli --circuit p2 --algo prop --k 8            # k-way (RB + refiner)
//   prop_cli --circuit balu --algo prop --stats-json stats.json
//   prop_cli --list                                    # bundled circuits
//
// Algorithms: fm, fm-tree, la2, la3, kl, prop, eig1, melo, paraboli, window.
// Output file format: one 0/1 (or part id for k-way) per line, node order.
// --stats-json FILE records per-pass refinement telemetry (cut trajectory,
// moves, rollback depth, seconds, container ops) for every run and dumps it
// as JSON; supported by the iterative refiners (fm, fm-tree, la2, la3,
// prop).  See EXPERIMENTS.md for the schema.
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hypergraph/generator.h"
#include "hypergraph/hgr_io.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "multilevel/multilevel_driver.h"
#include "multilevel/multilevel_kway.h"
#include "partition/metrics.h"
#include "partition/runner.h"
#include "runtime/runtime_cli.h"
#include "service/algo_factory.h"
#include "util/cli.h"

namespace {

constexpr const char* kUsage =
    "[--hgr FILE | --circuit NAME | --synth-nodes N] [--algo NAME]\n"
    "          [--runs N] [--balance 50-50|45-55] [--k K]\n"
    "          [--kway-refiner=prop|greedy|none]\n"
    "          [--kway-objective=cut|connectivity]\n"
    "          [--gain-engine=cached|scratch|shadow] [--pass-threads N]\n"
    "          [--rounds-per-barrier N]\n"
    "          [--multilevel] [--ml-refiner=prop|fm] [--coarsest-max-nodes N]\n"
    "          [--seed N] [--threads N] [--out FILE]\n"
    "          [--stats-json FILE] [--stats-timing=0|1] [--list]\n"
    "          [--time-budget-ms N] [--on-timeout=best|fail]\n"
    "          [--inject=SPEC] [--inject-seed N]";

int usage(const char* prog) {
  return prop::usage_error(prog, kUsage,
                           "algorithms: " + prop::service::algo_names());
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);

  if (!prop::check_flags(args,
                         {"hgr", "circuit", "algo", "runs", "balance", "k",
                          "kway-refiner", "kway-objective", "seed", "out",
                          "stats-json", "stats-timing", "list", "threads",
                          "gain-engine", "pass-threads", "rounds-per-barrier",
                          "multilevel",
                          "ml-refiner", "coarsest-max-nodes", "synth-nodes"},
                         kUsage)) {
    return 2;
  }

  if (args.has("list")) {
    std::printf("bundled Table 1 circuits (synthetic stand-ins):\n");
    for (const auto& spec : prop::mcnc_specs()) {
      std::printf("  %-10s nodes=%-6u nets=%-6u pins=%zu\n", spec.name.c_str(),
                  spec.num_nodes, spec.num_nets, spec.num_pins);
    }
    return 0;
  }

  prop::Hypergraph g;
  try {
    if (const auto path = args.get("hgr")) {
      g = prop::read_hgr_file(*path);
    } else if (const auto name = args.get("circuit")) {
      g = prop::make_mcnc_circuit(*name);
    } else if (const auto nodes = args.get("synth-nodes")) {
      // Scaled MCNC-like synthetic instance (multilevel experiments reach
      // sizes beyond Table 1's range this way).
      const long long n = args.get_int_or("synth-nodes", 0);
      if (n < 2) {
        std::fprintf(stderr, "error: --synth-nodes must be >= 2\n");
        return usage(argv[0]);
      }
      g = prop::generate_circuit(
          prop::scaled_spec("synth" + std::to_string(n),
                            static_cast<prop::NodeId>(n)),
          prop::kSuiteSeed);
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading circuit: %s\n", e.what());
    return 1;
  }

  const std::string engine_name = args.get_or("gain-engine", "cached");
  const auto gain_engine = prop::service::parse_gain_engine(engine_name);
  if (!gain_engine) {
    std::fprintf(stderr, "unknown gain engine '%s' (cached|scratch|shadow)\n",
                 engine_name.c_str());
    return usage(argv[0]);
  }
  // PROP intra-pass parallelism: 0 (default) = sequential move-by-move
  // engine, N >= 1 = deterministic round engine on N threads — byte-identical
  // output for every N >= 1 (DESIGN.md §4i).
  const long long pass_threads = args.get_int_or("pass-threads", 0);
  if (pass_threads < 0 || pass_threads > 256) {
    std::fprintf(stderr, "error: --pass-threads must be in [0, 256]\n");
    return usage(argv[0]);
  }
  // Round batching of the round engine: the pool is engaged only on every
  // Nth round (output byte-identical for every N; DESIGN.md §4k).
  const long long rounds_per_barrier = args.get_int_or("rounds-per-barrier", 1);
  if (rounds_per_barrier < 1 || rounds_per_barrier > 1024) {
    std::fprintf(stderr, "error: --rounds-per-barrier must be in [1, 1024]\n");
    return usage(argv[0]);
  }
  const long long k_arg = args.get_int_or("k", 2);
  if (k_arg < 2 || k_arg > 256) {
    std::fprintf(stderr, "error: --k must be in [2, 256]\n");
    return usage(argv[0]);
  }
  const auto k = static_cast<prop::NodeId>(k_arg);
  const std::string kway_refiner_name = args.get_or("kway-refiner", "prop");
  const auto kway_refiner =
      prop::service::parse_kway_refiner(kway_refiner_name);
  if (!kway_refiner) {
    std::fprintf(stderr, "unknown --kway-refiner '%s' (prop|greedy|none)\n",
                 kway_refiner_name.c_str());
    return usage(argv[0]);
  }
  const std::string kway_objective_name =
      args.get_or("kway-objective", "connectivity");
  const auto kway_objective =
      prop::service::parse_kway_objective(kway_objective_name);
  if (!kway_objective) {
    std::fprintf(stderr, "unknown --kway-objective '%s' (cut|connectivity)\n",
                 kway_objective_name.c_str());
    return usage(argv[0]);
  }
  std::unique_ptr<prop::Bipartitioner> algo;
  if (args.has("multilevel")) {
    if (args.has("algo")) {
      std::fprintf(stderr,
                   "error: --multilevel selects its own engine; drop --algo "
                   "and pick the refiner with --ml-refiner=prop|fm\n");
      return usage(argv[0]);
    }
    const long long coarsest = args.get_int_or("coarsest-max-nodes", 200);
    if (coarsest < 2) {
      std::fprintf(stderr, "error: --coarsest-max-nodes must be >= 2\n");
      return usage(argv[0]);
    }
    if (k > 2) {
      // K-way multilevel: FM bisection at the coarsest level plus the k-way
      // refiner during uncoarsening; the refiner comes from --kway-refiner.
      if (args.has("ml-refiner")) {
        std::fprintf(stderr,
                     "error: k-way multilevel picks the refiner with "
                     "--kway-refiner; drop --ml-refiner\n");
        return usage(argv[0]);
      }
      prop::MultilevelKWayConfig config;
      config.k = k;
      config.objective = *kway_objective;
      config.refiner = *kway_refiner;
      config.prop.gain_engine = *gain_engine;
      config.prop.pass_threads = static_cast<int>(pass_threads);
      config.prop.rounds_per_barrier = static_cast<int>(rounds_per_barrier);
      config.coarsest_max_nodes = static_cast<prop::NodeId>(coarsest);
      algo = std::make_unique<prop::MultilevelKWayPartitioner>(config);
    } else {
      prop::MultilevelConfig config;
      const std::string refiner = args.get_or("ml-refiner", "prop");
      if (refiner == "prop") {
        config.refiner = prop::MlRefiner::kProp;
      } else if (refiner == "fm") {
        config.refiner = prop::MlRefiner::kFm;
      } else {
        std::fprintf(stderr, "unknown --ml-refiner '%s' (prop|fm)\n",
                     refiner.c_str());
        return usage(argv[0]);
      }
      config.prop.gain_engine = *gain_engine;
      config.prop.pass_threads = static_cast<int>(pass_threads);
      config.prop.rounds_per_barrier = static_cast<int>(rounds_per_barrier);
      config.coarsest_max_nodes = static_cast<prop::NodeId>(coarsest);
      algo = std::make_unique<prop::MultilevelPartitioner>(config);
    }
  } else {
    const std::string algo_name = args.get_or("algo", "prop");
    algo = k > 2 ? prop::service::make_kway_algo(
                       algo_name, k, *kway_refiner, *kway_objective,
                       *gain_engine, static_cast<int>(pass_threads),
                       static_cast<int>(rounds_per_barrier))
                 : prop::service::make_algo(
                       algo_name, *gain_engine,
                       static_cast<int>(pass_threads),
                       static_cast<int>(rounds_per_barrier));
    if (!algo) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algo_name.c_str());
      return usage(argv[0]);
    }
  }

  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 20));
  const auto parsed_threads = prop::parse_thread_count(args);
  if (!parsed_threads) return usage(argv[0]);
  const int threads = *parsed_threads;

  std::optional<prop::RuntimeSession> session;
  try {
    session.emplace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage(argv[0]);
  }

  std::printf("%s\n", prop::describe(g).c_str());

  try {
    const prop::BalanceConstraint balance =
        args.get_or("balance", "45-55") == "50-50"
            ? prop::BalanceConstraint::fifty_fifty(g)
            : prop::BalanceConstraint::forty_five(g);
    const auto stats_json = args.get("stats-json");
    prop::RunnerOptions options;
    options.collect_telemetry = stats_json.has_value();
    options.context = session->context();
    options.threads = threads;
    const prop::MultiRunResult r =
        prop::run_many(*algo, g, balance, runs, seed, options);

    std::printf(
        "%s x%d: best cut = %.0f  mean = %.1f  (%.4f cpu s/run, %.4f s wall",
        algo->name().c_str(), r.runs_attempted(), r.best_cut(), r.mean_cut(),
        r.cpu_seconds_per_run, r.total_wall_seconds);
    if (threads >= 1) std::printf(", %d threads", threads);
    std::printf(")\n");
    const std::string degraded =
        prop::describe_degradations(session->degradations());
    if (!degraded.empty()) std::fputs(degraded.c_str(), stderr);
    if (!r.status.ok()) {
      std::printf("outcome: %s\n", r.status.describe().c_str());
    }
    if (const int failed = r.runs_failed(); failed > 0) {
      std::fprintf(stderr, "warning: %d of %d runs failed (see --stats-json)\n",
                   failed, r.runs_attempted());
    }
    if (k == 2) {
      const prop::Partition part(g, r.best.side);
      const prop::PartitionMetrics m = prop::compute_metrics(part);
      std::printf("sizes %lld | %lld   ratio-cut %.3g   absorption %.1f\n",
                  static_cast<long long>(m.size0),
                  static_cast<long long>(m.size1), m.ratio_cut, m.absorption);
    } else {
      // K-way: ratio-cut/absorption are 2-way metrics; report the balance
      // that matters here — per-part total node sizes.
      std::vector<long long> sizes(k, 0);
      for (std::size_t i = 0; i < r.best.side.size(); ++i) {
        sizes[r.best.side[i]] +=
            g.node_size(static_cast<prop::NodeId>(i));
      }
      std::printf("part sizes");
      for (prop::NodeId p = 0; p < k; ++p) {
        std::printf("%s %lld", p == 0 ? "" : " |", sizes[p]);
      }
      std::printf("\n");
    }
    if (stats_json) {
      if (r.telemetry.empty()) {
        std::fprintf(stderr, "warning: %s records no refinement telemetry\n",
                     algo->name().c_str());
      } else {
        std::printf("telemetry: %llu passes, %llu moves, max rollback %llu\n",
                    static_cast<unsigned long long>(r.total_passes()),
                    static_cast<unsigned long long>(r.total_moves_attempted()),
                    static_cast<unsigned long long>(r.max_rollback_depth()));
      }
      std::ofstream f(*stats_json);
      if (!f) {
        std::fprintf(stderr, "error: cannot write %s\n", stats_json->c_str());
        return 1;
      }
      prop::StatsJsonOptions json_options;
      json_options.include_timing = args.get_bool_or("stats-timing", true);
      prop::write_stats_json(f, g.name(), algo->name(), r, json_options);
      f << '\n';
      std::printf("wrote %s\n", stats_json->c_str());
    }
    if (const auto out = args.get("out")) {
      std::ofstream f(*out);
      for (const auto side : r.best.side) f << static_cast<int>(side) << '\n';
      std::printf("wrote %s\n", out->c_str());
    }
    if (!r.status.ok() && session->fail_on_timeout()) {
      std::fprintf(stderr, "error: %s (--on-timeout=fail)\n",
                   r.status.describe().c_str());
      return 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
