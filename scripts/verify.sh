#!/usr/bin/env bash
# Repo verification loop: plain Release build + tests, the same test suite
# under AddressSanitizer + UndefinedBehaviorSanitizer, and the concurrency
# suites under ThreadSanitizer.
#
#   scripts/verify.sh           # release tests + sanitizer tests
#   scripts/verify.sh --fast    # release tests only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== release build + tests =="
cmake --preset release
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

# Perf-regression smoke (Release only — sanitizer builds time nothing
# meaningful): the gain-kernel microbench on the fast circuit subset must
# stay within --max-regress of the committed BENCH_gain_kernels.json
# baseline (exit 4 on regression, exit 6 on a steady-state allocation).
echo "== gain-kernel perf gate (release) =="
./build/bench/gain_kernels --fast --baseline BENCH_gain_kernels.json \
  --out build/BENCH_gain_kernels.json > /dev/null

# Multilevel crossover gate: the 10^3+10^4 subset of bench/multilevel
# against the committed BENCH_multilevel.json (same >25% wall-regression
# policy; also re-asserts map/hash merge equivalence in-binary, exit 6).
echo "== multilevel perf gate (release) =="
./build/bench/multilevel --fast --baseline BENCH_multilevel.json \
  --out build/BENCH_multilevel.json > /dev/null

# Round-engine gate: bench/parallel_pass re-asserts in-binary that the
# deterministic round engine produces byte-identical partitions and
# stats-json across pass_threads 1/2/4 (exit 5), then applies the same
# >25% wall-regression policy against BENCH_parallel_pass.json (exit 4).
echo "== parallel-pass determinism + perf gate (release) =="
./build/bench/parallel_pass --fast --baseline BENCH_parallel_pass.json \
  --out build/BENCH_parallel_pass.json > /dev/null

# K-way pipeline gate: rb / rb+greedy / rb+k-way-PROP on the fast subset
# against the committed BENCH_kway.json.  In-binary asserts: every run's
# claimed cost is revalidated exactly (exit 6) and the full pipeline must
# match-or-beat its own greedy prefix on best connectivity at k > 2
# (exit 5); same >25% wall-regression policy (exit 4).
echo "== k-way quality + perf gate (release) =="
./build/bench/kway --fast --baseline BENCH_kway.json --assert-quality \
  --out build/BENCH_kway.json > /dev/null

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer pass (--fast) =="
  exit 0
fi

echo "== asan+ubsan build + tests =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# The fault-injection suite gets a dedicated sanitizer pass: degradation
# paths (eigensolver stalls, mid-pass cancellation, FM fallback) are exactly
# where stale pointers and half-updated state would hide, so run them under
# ASan+UBSan explicitly even though the full pass above includes them.
echo "== fault-injection suite (asan+ubsan) =="
ctest --preset asan-ubsan -j "$jobs" \
  -R 'RuntimeRobustness|FaultInjector|Deadline|CancelToken|Status'

echo "== budgeted-run smoke (asan+ubsan) =="
./build-asan/tools/prop_cli --circuit t4 --algo prop --runs 3 \
  --time-budget-ms 1 --on-timeout=best > /dev/null
./build-asan/tools/prop_cli --circuit t4 --algo eig1 --runs 1 \
  --inject=lanczos-stall > /dev/null

# Multilevel V-cycle smoke on a 10^4-node circuit under ASan: both
# refiners drive the full coarsen/contract/project/refine path, which is
# exactly where stale fine-to-coarse indices or builder misuse would hide.
echo "== multilevel smoke (asan+ubsan) =="
./build-asan/tools/prop_cli --circuit s15850 --multilevel \
  --ml-refiner=prop --runs 1 > /dev/null
./build-asan/tools/prop_cli --circuit s15850 --multilevel \
  --ml-refiner=fm --runs 1 > /dev/null

# K-way smoke under ASan: the flat pipeline (recursive bisection + greedy +
# native k-way PROP with its per-(net,part) product cache) and the k-way
# V-cycle — the cache epochs, rollback path and projection indices are the
# new stale-state surface.
echo "== k-way smoke (asan+ubsan) =="
./build-asan/tools/prop_cli --circuit p1 --algo prop --k 4 --runs 1 \
  > /dev/null
./build-asan/tools/prop_cli --circuit p1 --k 8 --multilevel --runs 1 \
  > /dev/null
# K-way round engine (§4k): the active-set sweeps, KWayGainEntry snapshots
# and batched apply/rebuild path of both PROP stages under ASan.
./build-asan/tools/prop_cli --circuit p1 --algo prop --k 4 --pass-threads 4 \
  --runs 1 > /dev/null

# Service chaos soak under ASan+UBSan: a short fault-injected soak that
# drives the admission queue past its limit.  The binary itself is the gate —
# it exits nonzero on any lost or duplicated response, any shed without a
# structured status, or any cross-worker-count byte divergence.
echo "== service chaos soak (asan+ubsan) =="
./build-asan/bench/service_throughput --fast --queue-limit 8 \
  --out build-asan/BENCH_service_throughput.json > /dev/null
printf '%s\n%s\n' \
  '{"op":"submit","id":"v1","circuit":"balu","runs":2,"max_retries":3}' \
  '{"op":"shutdown"}' | \
  ./build-asan/tools/prop_serve --workers 2 --inject validate-fail~0.5 \
  > /dev/null

# ThreadSanitizer over everything that touches the thread pool or the
# cross-thread stop latch: the parallel runner suites, the pool itself, the
# intra-pass round engine (ParallelPass/ParallelFor/ProbGainBatch), the
# socket front end (SocketServer/LineFramer, matched by 'Server'), and the
# runtime suites whose objects the workers share.  The whole test suite is
# single-threaded apart from these, so the targeted run is the honest TSan
# surface, not a shortcut.
echo "== tsan build + concurrency suites =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs" \
  -R 'ParallelRunner|ParallelPass|ParallelFor|SplitIndexRange|ProbGainBatch|ThreadPool|Runner|RuntimeRobustness|Deadline|CancelToken|FaultInjector|EngineEquivalence|ProbGainProperty|JobStore|Admission|Server|KWay'

echo "== tsan service smoke =="
./build-tsan/bench/service_throughput --fast --jobs 40 --queue-limit 6 \
  --workers-list 2,4 --out build-tsan/BENCH_service_throughput.json > /dev/null

echo "== tsan parallel smoke =="
./build-tsan/tools/prop_cli --circuit t4 --algo fm --runs 8 --threads 4 \
  > /dev/null
./build-tsan/tools/prop_cli --circuit t4 --algo prop --runs 4 --threads 2 \
  --time-budget-ms 1 --on-timeout=best > /dev/null
# The round engine's parallel sweeps (gain snapshot, probability staging,
# per-net product rebuild) under TSan — the data-race surface of DESIGN §4i.
./build-tsan/tools/prop_cli --circuit balu --algo prop --runs 2 \
  --pass-threads 4 > /dev/null
# The k-way round engine plus multi-round barrier batching (§4k): entry
# sweeps over dirty nodes and rounds_per_barrier pool engagement under TSan.
./build-tsan/tools/prop_cli --circuit balu --algo prop --k 4 --runs 2 \
  --pass-threads 4 --rounds-per-barrier 2 > /dev/null
# K-way jobs across the parallel runner: each worker clones the whole
# KWayPartitioner pipeline, so this exercises clone isolation under TSan.
./build-tsan/tools/prop_cli --circuit t4 --algo prop --k 4 --runs 4 \
  --threads 2 > /dev/null

echo "== verify OK =="
