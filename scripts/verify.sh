#!/usr/bin/env bash
# Repo verification loop: plain Release build + tests, then the same test
# suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
#   scripts/verify.sh           # release tests + sanitizer tests
#   scripts/verify.sh --fast    # release tests only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== release build + tests =="
cmake --preset release
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer pass (--fast) =="
  exit 0
fi

echo "== asan+ubsan build + tests =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

echo "== verify OK =="
